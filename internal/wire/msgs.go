package wire

import "fmt"

// Kind discriminates message types on the wire.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Ownership protocol (§4).
	KindOwnReq  // requester → driver (a directory node)
	KindOwnInv  // driver → remaining arbiters
	KindOwnAck  // arbiter → requester (or → driver during recovery)
	KindOwnVal  // requester (or recovery driver) → arbiters
	KindOwnNack // arbiter/driver → requester
	KindOwnResp // recovery driver → live requester (confirms arbitration win)

	// Reliable commit protocol (§5).
	KindCommitInv // coordinator → followers (R-INV)
	KindCommitAck // follower → coordinator (R-ACK)
	KindCommitVal // coordinator → followers (R-VAL)

	// Membership.
	KindView         // manager → nodes: new membership view
	KindRecoveryDone // node → manager: finished replaying pending commits

	// Hermes-lite replicated KV (load balancer substrate).
	KindHermesInv
	KindHermesAck
	KindHermesVal

	// Distributed-commit baseline (FaRM/FaSST-style OCC + 2PC).
	KindBReadReq
	KindBReadResp
	KindBLock
	KindBLockResp
	KindBValidate
	KindBValidateResp
	KindBBackup
	KindBBackupAck
	KindBCommit
	KindBCommitAck
	KindBAbort

	// Replicated view service (Vertical-Paxos-lite membership, §3.1/§5.1).
	KindVSPropose
	KindVSAccept
	KindVSCommit
	KindVSLease
	KindVSQuery

	// Sharded ownership directory (§6.2): shard metadata sync between
	// arbitration drivers after a placement change.
	KindDirPull
	KindDirState

	// Restart state sync: a recovered node reconciles its replayed WAL +
	// snapshot image against current owners before accepting traffic.
	KindSyncPull
	KindSyncState

	// Safe-time exchange: per-node applied watermarks backing MVCC
	// snapshot reads.
	KindSafeTime

	// Observability pull: a tool (zeusctl metrics/status) asks a node for
	// a point-in-time metrics and liveness snapshot.
	KindObsPull
	KindObsState

	kindSentinel // keep last
)

func (k Kind) String() string {
	names := [...]string{
		"invalid", "own-req", "own-inv", "own-ack", "own-val", "own-nack",
		"own-resp", "r-inv", "r-ack", "r-val", "view", "recovery-done",
		"h-inv", "h-ack", "h-val", "b-read-req", "b-read-resp", "b-lock",
		"b-lock-resp", "b-validate", "b-validate-resp", "b-backup",
		"b-backup-ack", "b-commit", "b-commit-ack", "b-abort",
		"vs-propose", "vs-accept", "vs-commit", "vs-lease", "vs-query",
		"dir-pull", "dir-state", "sync-pull", "sync-state", "safe-time",
		"obs-pull", "obs-state",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Msg is any protocol message. Concrete messages are plain structs; Kind
// identifies them for dispatch and serialization.
type Msg interface {
	Kind() Kind
}

// ---------------------------------------------------------------------------
// Ownership protocol messages (§4.1, Figure 3).
// ---------------------------------------------------------------------------

// OwnReq starts an ownership request. The requester picks a locally unique
// ReqID (to match the responses), sets its local o_state = Request, and sends
// the REQ to an arbitrarily chosen directory node, which becomes the driver.
type OwnReq struct {
	ReqID     uint64
	Obj       ObjectID
	Requester NodeID
	Mode      ReqMode
	Epoch     Epoch
	// Target is the reader to drop (DropReader) or the initial reader set
	// encoded as a bitmap (CreateObject).
	Target Bitmap
	// Shard is the directory shard the requester resolved Obj to (§6.2).
	// The driver rejects the REQ (NackNotDriver) when it disagrees — a
	// requester routing on a stale or differently-sized placement re-resolves
	// and retries instead of being arbitrated by the wrong driver set.
	Shard uint32
}

func (*OwnReq) Kind() Kind { return KindOwnReq }

// OwnInv is the invalidation the driver broadcasts to the remaining arbiters
// (the other directory nodes and the current owner). It carries the request
// id and the full ownership metadata so that any arbiter can later replay the
// arbitration phase idempotently (arb-replay, §4.1).
type OwnInv struct {
	ReqID     uint64
	Obj       ObjectID
	TS        OTS
	Epoch     Epoch
	Requester NodeID
	Driver    NodeID
	Mode      ReqMode
	// NewReplicas is the replica set after the request applies.
	NewReplicas ReplicaSet
	// PrevOwner is the owner before the request (it must contribute data).
	PrevOwner NodeID
	// Arbiters is the full arbiter set for this request.
	Arbiters Bitmap
	// Recovery marks an arb-replay: ACKs must flow to the driver, not the
	// requester (bottom of Figure 3).
	Recovery bool
}

func (*OwnInv) Kind() Kind { return KindOwnInv }

// OwnAck is an arbiter's acknowledgement, sent directly to the requester in
// the failure-free case (latency optimization, §4.1) or to the recovery
// driver during arb-replay. The previous owner piggybacks the object data
// when the requester holds no replica.
type OwnAck struct {
	ReqID       uint64
	Obj         ObjectID
	TS          OTS
	Epoch       Epoch
	From        NodeID
	Arbiters    Bitmap
	NewReplicas ReplicaSet
	Mode        ReqMode
	HasData     bool
	TVersion    uint64
	Data        []byte
	// CTS is the piggybacked value's commit timestamp (0 when unknown),
	// seeding the requester's version ring for snapshot reads.
	CTS uint64
}

func (*OwnAck) Kind() Kind { return KindOwnAck }

// OwnVal finalizes a request: the requester (who must apply first) validates
// all arbiters.
type OwnVal struct {
	ReqID uint64
	Obj   ObjectID
	TS    OTS
	Epoch Epoch
}

func (*OwnVal) Kind() Kind { return KindOwnVal }

// OwnNack rejects a request (lost arbitration, pending reliable commits on
// the object, stale epoch, ...). The requester aborts or retries with
// exponential back-off (§6.2).
type OwnNack struct {
	ReqID  uint64
	Obj    ObjectID
	Epoch  Epoch
	From   NodeID
	Reason NackReason
}

func (*OwnNack) Kind() Kind { return KindOwnNack }

// OwnResp confirms the arbitration win to a live requester during recovery so
// that, as in the failure-free case, the requester applies the request before
// any arbiter (§4.1).
type OwnResp struct {
	ReqID       uint64
	Obj         ObjectID
	TS          OTS
	Epoch       Epoch
	Driver      NodeID
	Arbiters    Bitmap
	NewReplicas ReplicaSet
	Mode        ReqMode
	HasData     bool
	TVersion    uint64
	Data        []byte
	// CTS mirrors OwnAck.CTS for the recovery-path data hand-off.
	CTS uint64
}

func (*OwnResp) Kind() Kind { return KindOwnResp }

// ---------------------------------------------------------------------------
// Reliable commit messages (§5.1, Figure 4).
// ---------------------------------------------------------------------------

// CommitInv is R-INV: the idempotent invalidation broadcast by the
// coordinator at the start of the reliable commit. It contains everything a
// follower needs to finish the transaction after a fault.
type CommitInv struct {
	Tx        TxID
	Epoch     Epoch
	Followers Bitmap
	// PrevVal tells a follower that was not a follower of the previous
	// pipeline slot that the previous slot has already been validated, so
	// this R-INV may be applied (§5.2).
	PrevVal bool
	// Replay marks a replayed R-INV after a coordinator failure.
	Replay  bool
	Updates []Update
	// CTS is the commit timestamp minted from the coordinator's hybrid
	// logical clock when the slot was registered. Followers merge it into
	// their clocks and publish it with the ring entries of the updates, so
	// MVCC snapshot reads can pick the newest version ≤ a read timestamp.
	CTS uint64
}

func (*CommitInv) Kind() Kind { return KindCommitInv }

// CommitAck is R-ACK. Because pipelines are FIFO, acknowledging tx_id implies
// the successful reception and processing of all previous slots in the pipe.
type CommitAck struct {
	Tx    TxID
	Epoch Epoch
	From  NodeID
	// AppliedWM piggybacks the sender's highest applied CTS on this pipe:
	// every R-INV with CTS ≤ AppliedWM delivered on the pipe has been
	// applied (and ring-published) at the sender. The coordinator uses it
	// to mark earlier slots acked when their individual R-ACKs were lost.
	AppliedWM uint64
}

func (*CommitAck) Kind() Kind { return KindCommitAck }

// CommitVal is R-VAL: followers flip the updated objects back to Valid iff
// their t_version has not been increased since, then discard the stored
// R-INV.
type CommitVal struct {
	Tx    TxID
	Epoch Epoch
}

func (*CommitVal) Kind() Kind { return KindCommitVal }

// ---------------------------------------------------------------------------
// Membership messages.
// ---------------------------------------------------------------------------

// View announces a membership view: the set of live nodes tagged with a
// monotonically increasing epoch id, published only after all leases of
// departed nodes have expired (§3.1).
type View struct {
	Epoch Epoch
	Live  Bitmap
}

func (*View) Kind() Kind { return KindView }

// RecoveryDone tells the membership manager that the sender has no more
// pending reliable commits from dead coordinators; once every live node has
// reported, the ownership protocol resumes (§5.1).
type RecoveryDone struct {
	Epoch Epoch
	From  NodeID
}

func (*RecoveryDone) Kind() Kind { return KindRecoveryDone }

// ---------------------------------------------------------------------------
// Hermes-lite messages (load-balancer KV, §3.1).
// ---------------------------------------------------------------------------

// HermesInv invalidates a key at all replicas with its new value.
type HermesInv struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
	From  NodeID
	Val   []byte
}

func (*HermesInv) Kind() Kind { return KindHermesInv }

// HermesAck acknowledges an invalidation.
type HermesAck struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
	From  NodeID
}

func (*HermesAck) Kind() Kind { return KindHermesAck }

// HermesVal validates a key once every replica acked the invalidation.
type HermesVal struct {
	Key   uint64
	TS    OTS
	Epoch Epoch
}

func (*HermesVal) Kind() Kind { return KindHermesVal }

// ---------------------------------------------------------------------------
// Distributed-commit baseline messages (FaRM/FaSST-style, §6.1).
// ---------------------------------------------------------------------------

// BVer pairs an object with a version for validation.
type BVer struct {
	Obj ObjectID
	Ver uint64
}

// BReadReq fetches an object from its primary (remote access).
type BReadReq struct {
	ReqID uint64
	From  NodeID
	Obj   ObjectID
}

func (*BReadReq) Kind() Kind { return KindBReadReq }

// BReadResp returns the object value and version (OK=false: locked/missing).
type BReadResp struct {
	ReqID uint64
	Obj   ObjectID
	Ver   uint64
	OK    bool
	Data  []byte
}

func (*BReadResp) Kind() Kind { return KindBReadResp }

// BLock locks the write set entries homed at the receiving primary, checking
// that versions still match the coordinator's reads (phase LOCK).
type BLock struct {
	ReqID uint64
	From  NodeID
	Items []BVer
}

func (*BLock) Kind() Kind { return KindBLock }

// BLockResp reports lock acquisition success.
type BLockResp struct {
	ReqID uint64
	From  NodeID
	OK    bool
}

func (*BLockResp) Kind() Kind { return KindBLockResp }

// BValidate re-checks read-set versions at the primary (phase VALIDATE).
type BValidate struct {
	ReqID uint64
	From  NodeID
	Items []BVer
}

func (*BValidate) Kind() Kind { return KindBValidate }

// BValidateResp reports read validation success.
type BValidateResp struct {
	ReqID uint64
	From  NodeID
	OK    bool
}

func (*BValidateResp) Kind() Kind { return KindBValidateResp }

// BBackup ships new values to backup replicas (phase UPDATE-BACKUP).
type BBackup struct {
	ReqID   uint64
	From    NodeID
	Updates []Update
}

func (*BBackup) Kind() Kind { return KindBBackup }

// BBackupAck acknowledges durable receipt at a backup.
type BBackupAck struct {
	ReqID uint64
	From  NodeID
}

func (*BBackupAck) Kind() Kind { return KindBBackupAck }

// BCommit applies new values at the primary and releases locks
// (phase UPDATE-PRIMARY).
type BCommit struct {
	ReqID   uint64
	From    NodeID
	Updates []Update
}

func (*BCommit) Kind() Kind { return KindBCommit }

// BCommitAck acknowledges primary application.
type BCommitAck struct {
	ReqID uint64
	From  NodeID
}

func (*BCommitAck) Kind() Kind { return KindBCommitAck }

// BAbort releases locks held by an aborted transaction at the primary.
type BAbort struct {
	ReqID uint64
	From  NodeID
	Objs  []ObjectID
}

func (*BAbort) Kind() Kind { return KindBAbort }

// ---------------------------------------------------------------------------
// Replicated view service messages (internal/viewsvc).
//
// The membership service the paper assumes (§3.1: a fault-tolerant,
// lease-protected Vertical-Paxos view service) is implemented as a small
// leader-driven replicated state machine. Ballots order leaderships; every
// committed command produces a full post-state snapshot (VSState) so that
// replication and leader takeover are state transfer, not log replay —
// "Vertical Paxos lite".
// ---------------------------------------------------------------------------

// VSOp enumerates view-service commands.
type VSOp uint8

const (
	// VSNoop commits no state change (used by a new leader to re-publish
	// the committed state after a ballot takeover).
	VSNoop VSOp = iota
	// VSFail removes a crashed node (after its lease expired).
	VSFail
	// VSJoin adds a node (scale-out; no recovery barrier).
	VSJoin
	// VSLeave removes a node gracefully (scale-in; barrier still runs).
	VSLeave
	// VSRecoveryDone records one node's recovery-barrier report.
	VSRecoveryDone
)

func (o VSOp) String() string {
	switch o {
	case VSNoop:
		return "noop"
	case VSFail:
		return "fail"
	case VSJoin:
		return "join"
	case VSLeave:
		return "leave"
	case VSRecoveryDone:
		return "recovery-done"
	default:
		return fmt.Sprintf("VSOp(%d)", uint8(o))
	}
}

// VSCommand is one state-machine command. Node is the subject (the failed /
// joining / leaving / reporting node); Epoch is only meaningful for
// VSRecoveryDone (the barrier epoch the report belongs to).
type VSCommand struct {
	Op    VSOp
	Node  NodeID
	Epoch Epoch
	// Addr is the node's advertised transport address (VSJoin only). The
	// state machine folds it into VSState.Addrs, making the address book
	// quorum-committed cluster metadata instead of per-process flag soup.
	Addr string
}

// VSState is the complete view-service state after applying a command: the
// membership view plus the open recovery barrier. Index is the commit index
// of the command that produced it (strictly increasing), which makes state
// transfer idempotent: receivers keep the highest Index they have seen.
type VSState struct {
	Index        uint64
	Epoch        Epoch
	Live         Bitmap
	Barrier      Bitmap // nodes that still owe a recovery report (0 = closed)
	BarrierEpoch Epoch  // epoch whose barrier is (or was last) open
	// Placement is the sharded ownership directory's shard→drivers map
	// (§6.2), recomputed by the state machine on every live-set change so
	// that placement is quorum-committed and survives leader takeover
	// exactly like membership. The Shards slice is immutable once a state
	// is published; states share it freely.
	Placement DirPlacement
	// Addrs is the replicated address book for multi-process deployments:
	// every data node's advertised transport address, seeded from the
	// bootstrap configuration and updated by VSJoin commands. Empty for
	// in-process clusters (the mem fabric needs no addresses). Like
	// Placement.Shards, the slice is immutable once published.
	Addrs []NodeAddr
}

// NodeAddr maps a data node to its advertised transport address.
type NodeAddr struct {
	Node NodeID
	Addr string
}

// VSPropose asks the view-service leader to run a command. Clients multicast
// proposals to every replica; non-leaders ignore them, and commands are
// deduplicated against the current state (a VSFail of an already-dead node is
// a no-op), so retries and duplicate delivery are harmless.
type VSPropose struct {
	Cmd VSCommand
}

func (*VSPropose) Kind() Kind { return KindVSPropose }

// VSAccept carries the quorum-replication and ballot-takeover phases.
//
//	Phase VSPhaseAccept:  leader → replica, replicate entry (Cmd, State).
//	Phase VSPhaseAck:     replica → leader, entry accepted.
//	Phase VSPhasePrepare: candidate → replica, promise ballots < Ballot.
//	Phase VSPhasePromise: replica → candidate, carrying the replica's
//	                      committed state and (if any) accepted entry.
type VSAccept struct {
	Ballot uint64
	Phase  uint8
	Cmd    VSCommand
	State  VSState // accept/ack: the entry; promise: committed state

	// Promise-only: the replica's accepted-but-uncommitted entry.
	HasAcc    bool
	AccBallot uint64
	AccCmd    VSCommand
	AccState  VSState
}

// VSAccept phases.
const (
	VSPhaseAccept uint8 = iota
	VSPhaseAck
	VSPhasePrepare
	VSPhasePromise
)

func (*VSAccept) Kind() Kind { return KindVSAccept }

// VSCommit announces a committed command and its post-state to replicas and
// subscribed clients. BarrierDone marks the command that closed the recovery
// barrier for DoneEpoch; the flag is advisory (clients derive completion
// from the open→closed state transition, which also covers commits they
// learned via VSQuery instead of this push).
type VSCommit struct {
	Ballot      uint64
	Cmd         VSCommand
	State       VSState
	BarrierDone bool
	DoneEpoch   Epoch
}

func (*VSCommit) Kind() Kind { return KindVSCommit }

// VSLeaseMsg is a lease renewal (client → replicas, Nodes = the data nodes
// renewing — a client coalesces all of its agents' renewals into one bitmap
// per throttle window) or a leader heartbeat (leader → replicas, Heartbeat
// set; Ballot lets replicas track the current leadership).
type VSLeaseMsg struct {
	Nodes     Bitmap
	Heartbeat bool
	Ballot    uint64
}

func (*VSLeaseMsg) Kind() Kind { return KindVSLease }

// VSQuery reads the committed state from a replica (Resp=false) or carries
// the reply (Resp=true). Clients use it to seed their cache and as a backstop
// when a pushed VSCommit was lost.
type VSQuery struct {
	Resp   bool
	Ballot uint64
	State  VSState
}

func (*VSQuery) Kind() Kind { return KindVSQuery }

// ---------------------------------------------------------------------------
// Sharded-directory sync messages (§6.2, internal/directory).
//
// When a placement change makes a node a NEW driver of a shard (a previous
// driver crashed, or a joined node rendezvous-ranked into the set), the new
// driver has no directory entries for the shard's objects. It pulls the
// shard's metadata — replica sets and ownership timestamps, never object
// data — from the surviving drivers, NACKing ownership REQs for the shard
// (NackRecovering) until the first snapshot lands.
// ---------------------------------------------------------------------------

// DirPull asks a surviving driver for the directory metadata of a set of
// shards (all shards the puller newly drives that share the same source
// set, so one view change costs each source a single store scan). The
// source answers with one DirState per shard, echoing PlacementEpoch.
type DirPull struct {
	Shards         []uint32
	PlacementEpoch Epoch
	From           NodeID
}

func (*DirPull) Kind() Kind { return KindDirPull }

// DirEntry is one object's directory metadata: the applied ownership
// timestamp and replica set (Table 1's o_ts / o_replicas). Pending flags an
// arbitration that was in flight at the source when it snapshotted: the
// entry's applied state may be superseded the moment that arbitration's
// replay completes, so a new driver must not mint timestamps from it until
// it has observed the outcome (directory.Service suspect gating).
type DirEntry struct {
	Obj      ObjectID
	TS       OTS
	Replicas ReplicaSet
	Pending  bool
}

// DirState carries one shard's directory snapshot to a pulling driver.
// Entries are applied idempotently: an entry only installs over a strictly
// older ownership timestamp, and never over a pending arbitration.
// PlacementEpoch echoes the pull it answers, so a delayed snapshot from a
// superseded placement cannot mark a newer pull complete.
type DirState struct {
	Shard          uint32
	PlacementEpoch Epoch
	From           NodeID
	Entries        []DirEntry
}

func (*DirState) Kind() Kind { return KindDirState }

// ---------------------------------------------------------------------------
// Restart state-sync messages (rejoin as delta sync, not cold start).
//
// A node restarting from its WAL + snapshot holds data whose cluster status
// it cannot judge: versions may have advanced while it was down, and every
// recovered access level is conservatively demoted to non-replica. Before
// rejoining the view it reconciles against current owners, DIR-PULL style:
// batched pulls carrying (object, recovered version), answered by whichever
// live node currently owns each object with the authoritative version,
// replica set and — only when the versions differ — the data delta.
// ---------------------------------------------------------------------------

// SyncClass classifies a SyncState answer (SyncEntry.Class; zero in pulls).
type SyncClass uint8

const (
	// SyncOwner marks an authoritative answer: the sender is the object's
	// current owner with a validated value. It retires the pull.
	SyncOwner SyncClass = iota + 1
	// SyncClaim means the sender holds owner level but the object is
	// mid-commit or mid-transfer, so it cannot answer authoritatively yet.
	// The pull stays open (the puller retries), but a live owner exists:
	// the puller must never reclaim the object from local durable state.
	SyncClaim
	// SyncHint is a non-owner replica reporting what it knows: its version
	// and grant timestamp, plus the value when it is validated and newer
	// than the puller's. Hints fence reclaim — a hint above the puller's
	// recovered version proves the cluster advanced while it was down, even
	// if the writer (the old owner) died before any owner can answer.
	SyncHint
)

// SyncEntry is one object in a state-sync exchange. In a SyncPull, Version
// is the puller's recovered t_version (data omitted, Class zero). In a
// SyncState, Class says how to read the entry (see SyncClass):
// Version/TS/Replicas are the sender's values — authoritative for
// SyncOwner, advisory for SyncHint — and Data is set iff the puller's
// version was stale and the sender's value is validated (HasData
// distinguishes "up to date" from "deleted to empty").
type SyncEntry struct {
	Obj      ObjectID
	Version  uint64
	TS       OTS
	Replicas ReplicaSet
	Class    SyncClass
	HasData  bool
	Data     []byte
	// CTS is the sender's commit timestamp for Version (0 when unknown),
	// so a state-synced replica restarts its version ring at the
	// authoritative timestamp instead of serving pre-sync versions.
	CTS uint64
}

// SyncPull asks live nodes for the authoritative state of the listed
// objects. The puller multicasts chunks to all live data nodes; only the
// current owner of each object answers for it, so responses partition the
// pulled set. Unanswered entries (owner currently failing over) are
// re-pulled until the sync deadline.
type SyncPull struct {
	From    NodeID
	Entries []SyncEntry
}

func (*SyncPull) Kind() Kind { return KindSyncPull }

// SyncState answers a SyncPull with the subset of entries the sender owns.
type SyncState struct {
	From    NodeID
	Entries []SyncEntry
}

func (*SyncState) Kind() Kind { return KindSyncState }

// ---------------------------------------------------------------------------
// Safe-time exchange (MVCC snapshot reads).
// ---------------------------------------------------------------------------

// SafeTime advertises the sender's applied watermark WM: every reliable
// commit the sender coordinates with CTS ≤ WM is applied (and
// ring-published) at all of its followers, and every R-INV the sender
// accepted with CTS ≤ WM is applied locally. Receivers fold the reports
// into safetime.Tracker; min over live nodes, made monotone, is the
// safe-time at which any replica may serve snapshot reads. Epoch-fenced
// like every protocol message.
type SafeTime struct {
	From  NodeID
	Epoch Epoch
	WM    uint64
}

func (*SafeTime) Kind() Kind { return KindSafeTime }

// ---------------------------------------------------------------------------
// Observability pull (zeusctl metrics / status).
// ---------------------------------------------------------------------------

// ObsPull asks a node for an observability snapshot. Full additionally
// requests the rendered metric text (zeusctl metrics); without it the reply
// carries only the scalar status fields (zeusctl status), keeping the
// periodic status poll cheap.
type ObsPull struct {
	From NodeID
	Full bool
}

func (*ObsPull) Kind() Kind { return KindObsPull }

// ObsState answers an ObsPull with the node's liveness scalars — current
// epoch, applied watermark, safe-time and clock (snapshot-read staleness is
// Clock - SafeTime), committed transaction count, watchdog incident count —
// plus, when Full was requested, the full text-format metric dump.
type ObsState struct {
	From      NodeID
	Epoch     Epoch
	AppliedWM uint64
	SafeTime  uint64
	Clock     uint64
	Commits   uint64
	Incidents uint64
	Metrics   []byte
}

func (*ObsState) Kind() Kind { return KindObsState }
