package baseline

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"zeus/internal/dbapi"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func fromU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func newBaselineCluster(t *testing.T, n int, degree int) []*Node {
	t.Helper()
	hub := transport.NewHub()
	cfg := Config{Nodes: n, Degree: degree}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		tr := hub.Node(wire.NodeID(i))
		r := transport.NewRouter()
		nodes[i] = NewNode(wire.NodeID(i), tr, r, cfg)
		tr.SetHandler(r.Dispatch)
		t.Cleanup(func() { tr.Close() })
	}
	return nodes
}

// seedAll installs obj at its primary and backups per the static sharding.
func seedAll(nodes []*Node, obj wire.ObjectID, data []byte) {
	p := nodes[0].Primary(obj)
	nodes[p].Seed(obj, 1, data)
	for _, b := range nodes[0].Backups(obj) {
		nodes[b].Seed(obj, 1, data)
	}
}

func TestLocalReadWrite(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 0, []byte("init")) // primary = node 0
	err := dbapi.Run(nodes[0], 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(0)
		if err != nil {
			return err
		}
		if string(v) != "init" {
			t.Errorf("got %q", v)
		}
		return tx.Set(0, []byte("next"))
	})
	if err != nil {
		t.Fatal(err)
	}
	ver, data, ok := nodes[0].localRead(0)
	if !ok || ver != 2 || string(data) != "next" {
		t.Fatalf("after commit: v%d %q ok=%v", ver, data, ok)
	}
}

func TestRemoteReadAndCommit(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 1, u64(10)) // primary = node 1
	// Node 0 coordinates: read and write via RPC.
	err := dbapi.Run(nodes[0], 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(1)
		if err != nil {
			return err
		}
		return tx.Set(1, u64(fromU64(v)+5))
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0].Stats().RemoteReads == 0 {
		t.Fatal("no remote reads recorded")
	}
	_, data, _ := nodes[1].localRead(1)
	if fromU64(data) != 15 {
		t.Fatalf("value = %d", fromU64(data))
	}
	// Backups received the update too.
	for _, b := range nodes[0].Backups(1) {
		_, bd, ok := nodes[b].localRead(1)
		if !ok || fromU64(bd) != 15 {
			t.Fatalf("backup %d: %v %d", b, ok, fromU64(bd))
		}
	}
}

func TestOCCConflictAborts(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 2, u64(0)) // primary = node 2
	// tx reads, then a conflicting write bumps the version, then commit.
	tx := nodes[0].Begin(0)
	if _, err := tx.Get(2); err != nil {
		t.Fatal(err)
	}
	if err := dbapi.Run(nodes[1], 0, func(tx2 dbapi.Txn) error {
		v, err := tx2.Get(2)
		if err != nil {
			return err
		}
		return tx2.Set(2, u64(fromU64(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(2, u64(99)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, dbapi.ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// The conflicting increment survived.
	_, data, _ := nodes[2].localRead(2)
	if fromU64(data) != 1 {
		t.Fatalf("value = %d", fromU64(data))
	}
}

func TestReadOnlyValidation(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 3, u64(7)) // primary = node 0
	ro := nodes[1].BeginRO(0)
	v, err := ro.Get(3)
	if err != nil || fromU64(v) != 7 {
		t.Fatalf("get: %v %d", err, fromU64(v))
	}
	// Concurrent write invalidates the read-only snapshot.
	if err := dbapi.Run(nodes[0], 0, func(tx dbapi.Txn) error {
		return tx.Set(3, u64(8))
	}); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); !errors.Is(err, dbapi.ErrConflict) {
		t.Fatalf("RO commit: %v", err)
	}
}

func TestSerializableCounterBaseline(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 5, u64(0))
	const perNode = 25
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				err := dbapi.Run(nodes[i], i, func(tx dbapi.Txn) error {
					v, err := tx.Get(5)
					if err != nil {
						return err
					}
					return tx.Set(5, u64(fromU64(v)+1))
				})
				if err != nil {
					t.Errorf("node %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	p := nodes[0].Primary(5)
	_, data, _ := nodes[p].localRead(5)
	if fromU64(data) != 3*perNode {
		t.Fatalf("lost updates: %d, want %d", fromU64(data), 3*perNode)
	}
}

func TestMultiObjectCommitAcrossPrimaries(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 6, u64(100)) // primary 0
	seedAll(nodes, 7, u64(200)) // primary 1
	err := dbapi.Run(nodes[2], 0, func(tx dbapi.Txn) error {
		a, err := tx.Get(6)
		if err != nil {
			return err
		}
		b, err := tx.Get(7)
		if err != nil {
			return err
		}
		if err := tx.Set(6, u64(fromU64(a)-50)); err != nil {
			return err
		}
		return tx.Set(7, u64(fromU64(b)+50))
	})
	if err != nil {
		t.Fatal(err)
	}
	_, d6, _ := nodes[0].localRead(6)
	_, d7, _ := nodes[1].localRead(7)
	if fromU64(d6) != 50 || fromU64(d7) != 250 {
		t.Fatalf("transfer broke atomicity: %d %d", fromU64(d6), fromU64(d7))
	}
}

func TestBlindWriteWithoutRead(t *testing.T) {
	nodes := newBaselineCluster(t, 3, 3)
	seedAll(nodes, 8, u64(1))
	err := dbapi.Run(nodes[0], 0, func(tx dbapi.Txn) error {
		return tx.Set(8, u64(42))
	})
	if err != nil {
		t.Fatal(err)
	}
	p := nodes[0].Primary(8)
	_, data, _ := nodes[p].localRead(8)
	if fromU64(data) != 42 {
		t.Fatalf("blind write lost: %d", fromU64(data))
	}
}

func TestSingleNodeBlockingStore(t *testing.T) {
	// Figure 13's "Redis-like blocking store": one server, remote clients.
	hub := transport.NewHub()
	cfg := Config{Nodes: 1, Degree: 1}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		tr := hub.Node(wire.NodeID(i))
		r := transport.NewRouter()
		n := NewNode(wire.NodeID(i), tr, r, cfg)
		tr.SetHandler(r.Dispatch)
		nodes = append(nodes, n)
		t.Cleanup(func() { tr.Close() })
	}
	nodes[0].Seed(9, 1, u64(5))
	// Client on node 2: every access is a blocking RPC to node 0.
	err := dbapi.Run(nodes[2], 0, func(tx dbapi.Txn) error {
		v, err := tx.Get(9)
		if err != nil {
			return err
		}
		return tx.Set(9, u64(fromU64(v)*2))
	})
	if err != nil {
		t.Fatal(err)
	}
	_, data, _ := nodes[0].localRead(9)
	if fromU64(data) != 10 {
		t.Fatalf("value = %d", fromU64(data))
	}
	if nodes[2].Stats().RemoteReads != 1 {
		t.Fatalf("remote reads = %d", nodes[2].Stats().RemoteReads)
	}
}
