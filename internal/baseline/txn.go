package baseline

import (
	"fmt"
	"sort"

	"zeus/internal/dbapi"
	"zeus/internal/wire"
)

// Txn is one OCC transaction coordinated by this node.
type Txn struct {
	n        *Node
	ro       bool
	reads    map[wire.ObjectID]uint64
	readBuf  map[wire.ObjectID][]byte
	writes   map[wire.ObjectID][]byte
	finished bool
}

// Begin starts a write transaction (the worker argument exists for interface
// parity; baseline transactions block their caller anyway).
func (n *Node) Begin(worker int) dbapi.Txn { return n.newTxn(false) }

// BeginRO starts a read-only transaction: reads + validation, no locks.
func (n *Node) BeginRO(worker int) dbapi.Txn { return n.newTxn(true) }

func (n *Node) newTxn(ro bool) *Txn {
	return &Txn{
		n:       n,
		ro:      ro,
		reads:   make(map[wire.ObjectID]uint64),
		readBuf: make(map[wire.ObjectID][]byte),
		writes:  make(map[wire.ObjectID][]byte),
	}
}

// Get reads obj from its (possibly remote) primary.
func (tx *Txn) Get(obj uint64) ([]byte, error) {
	id := wire.ObjectID(obj)
	if !tx.ro {
		if w, ok := tx.writes[id]; ok {
			return append([]byte(nil), w...), nil
		}
	}
	if b, ok := tx.readBuf[id]; ok {
		return append([]byte(nil), b...), nil
	}
	n := tx.n
	p := n.Primary(id)
	var ver uint64
	var data []byte
	var ok bool
	if p == n.id {
		ver, data, ok = n.localRead(id)
	} else {
		// Remote access: one blocking round trip (§6.1).
		n.stRemote.Add(1)
		reqID := n.newReqID()
		resp, got := n.call(p, reqID, &wire.BReadReq{ReqID: reqID, From: n.id, Obj: id})
		if got {
			if r, isRead := resp.(*wire.BReadResp); isRead && r.OK {
				ver, data, ok = r.Ver, r.Data, true
			}
		}
	}
	if !ok {
		return nil, dbapi.ErrConflict
	}
	tx.reads[id] = ver
	tx.readBuf[id] = data
	return append([]byte(nil), data...), nil
}

// Set buffers a write.
func (tx *Txn) Set(obj uint64, val []byte) error {
	if tx.ro {
		return fmt.Errorf("baseline: Set on read-only transaction")
	}
	tx.writes[wire.ObjectID(obj)] = append([]byte(nil), val...)
	return nil
}

// Abort abandons the transaction (nothing is locked before Commit).
func (tx *Txn) Abort() {
	if !tx.finished {
		tx.finished = true
		tx.n.stAborts.Add(1)
	}
}

// Commit runs the FaRM-style distributed commit:
// LOCK → VALIDATE → UPDATE BACKUPS → UPDATE PRIMARIES.
func (tx *Txn) Commit() error {
	if tx.finished {
		return fmt.Errorf("baseline: transaction already finished")
	}
	tx.finished = true
	n := tx.n

	if tx.ro || len(tx.writes) == 0 {
		// Read-only: re-validate versions at the primaries.
		if err := tx.validateReads(nil); err != nil {
			n.stAborts.Add(1)
			return err
		}
		n.stCommits.Add(1)
		return nil
	}

	reqID := n.newReqID()
	writeIDs := make([]wire.ObjectID, 0, len(tx.writes))
	for id := range tx.writes {
		writeIDs = append(writeIDs, id)
	}
	sort.Slice(writeIDs, func(i, j int) bool { return writeIDs[i] < writeIDs[j] })

	// Phase 1: LOCK the write set at the primaries, checking read versions.
	// Primaries are visited in node-id order (and objects within a request
	// in id order, from the sort above) so concurrent transactions cannot
	// livelock by locking in opposite orders.
	byPrimary := map[wire.NodeID][]wire.BVer{}
	var primaries []wire.NodeID
	for _, id := range writeIDs {
		ver := NoVersion
		if v, wasRead := tx.reads[id]; wasRead {
			ver = v
		}
		p := n.Primary(id)
		if _, seen := byPrimary[p]; !seen {
			primaries = append(primaries, p)
		}
		byPrimary[p] = append(byPrimary[p], wire.BVer{Obj: id, Ver: ver})
	}
	sort.Slice(primaries, func(i, j int) bool { return primaries[i] < primaries[j] })
	locked := make([]wire.NodeID, 0, len(byPrimary))
	abort := func() error {
		for _, p := range locked {
			objs := make([]wire.ObjectID, 0)
			for _, it := range byPrimary[p] {
				objs = append(objs, it.Obj)
			}
			if p == n.id {
				n.handleAbort(&wire.BAbort{ReqID: reqID, From: n.id, Objs: objs})
			} else {
				_ = n.tr.Send(p, &wire.BAbort{ReqID: reqID, From: n.id, Objs: objs})
			}
		}
		n.stAborts.Add(1)
		return dbapi.ErrConflict
	}
	for _, p := range primaries {
		items := byPrimary[p]
		ok := false
		if p == n.id {
			ok = n.lockLocal(reqID, items)
		} else {
			resp, got := n.call(p, reqID, &wire.BLock{ReqID: reqID, From: n.id, Items: items})
			if got {
				if r, isLock := resp.(*wire.BLockResp); isLock {
					ok = r.OK
				}
			}
		}
		if !ok {
			return abort()
		}
		locked = append(locked, p)
	}

	// Phase 2: VALIDATE the read set (objects not written).
	if err := tx.validateReads(reqID2set(reqID)); err != nil {
		return abort()
	}

	// Phase 3: UPDATE BACKUPS.
	byBackup := map[wire.NodeID][]wire.Update{}
	byPrimaryU := map[wire.NodeID][]wire.Update{}
	for _, id := range writeIDs {
		newVer := tx.reads[id] + 1
		if _, wasRead := tx.reads[id]; !wasRead {
			newVer = tx.versionAfterLock(id) + 1
		}
		u := wire.Update{Obj: id, Version: newVer, Data: tx.writes[id]}
		for _, b := range n.Backups(id) {
			byBackup[b] = append(byBackup[b], u)
		}
		byPrimaryU[n.Primary(id)] = append(byPrimaryU[n.Primary(id)], u)
	}
	for b, ups := range byBackup {
		if b == n.id {
			n.handleBackupLocal(ups)
			continue
		}
		if _, got := n.call(b, reqID, &wire.BBackup{ReqID: reqID, From: n.id, Updates: ups}); !got {
			return abort()
		}
	}

	// Phase 4: UPDATE PRIMARIES (apply + unlock).
	for p, ups := range byPrimaryU {
		if p == n.id {
			n.commitLocal(reqID, ups)
			continue
		}
		if _, got := n.call(p, reqID, &wire.BCommit{ReqID: reqID, From: n.id, Updates: ups}); !got {
			// Locks are held remotely; the primary applies when the
			// retransmitted message arrives. We report success-unknown
			// as conflict (simplification; the paper's baselines
			// recover via their own logs).
			n.stAborts.Add(1)
			return dbapi.ErrConflict
		}
	}
	n.stCommits.Add(1)
	return nil
}

// versionAfterLock returns the current version of a locked, never-read
// object at its primary (local only; remote blind writes re-read).
func (tx *Txn) versionAfterLock(id wire.ObjectID) uint64 {
	if o := tx.n.obj(id, false); o != nil {
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.ver
	}
	return 0
}

func reqID2set(reqID uint64) *uint64 { return &reqID }

// validateReads re-checks read versions at the primaries. holder, when
// non-nil, is the lock-holding request id (write commits validate while
// holding their own locks).
func (tx *Txn) validateReads(holder *uint64) error {
	n := tx.n
	byPrimary := map[wire.NodeID][]wire.BVer{}
	for id, ver := range tx.reads {
		if _, written := tx.writes[id]; written {
			continue
		}
		byPrimary[n.Primary(id)] = append(byPrimary[n.Primary(id)], wire.BVer{Obj: id, Ver: ver})
	}
	reqID := uint64(0)
	if holder != nil {
		reqID = *holder
	} else {
		reqID = n.newReqID()
	}
	for p, items := range byPrimary {
		ok := false
		if p == n.id {
			ok = n.validateLocal(reqID, items)
		} else {
			resp, got := n.call(p, reqID, &wire.BValidate{ReqID: reqID, From: n.id, Items: items})
			if got {
				if r, isVal := resp.(*wire.BValidateResp); isVal {
					ok = r.OK
				}
			}
		}
		if !ok {
			return dbapi.ErrConflict
		}
	}
	return nil
}

// Local fast paths (the coordinator is also a primary/backup).

func (n *Node) lockLocal(reqID uint64, items []wire.BVer) bool {
	var taken []*bobj
	for _, it := range items {
		o := n.obj(it.Obj, true)
		o.mu.Lock()
		free := o.locked == 0 || o.locked == reqID
		match := it.Ver == NoVersion || o.ver == it.Ver
		if free && match {
			o.locked = reqID
			taken = append(taken, o)
			o.mu.Unlock()
			continue
		}
		o.mu.Unlock()
		for _, t := range taken {
			t.mu.Lock()
			if t.locked == reqID {
				t.locked = 0
			}
			t.mu.Unlock()
		}
		return false
	}
	return true
}

func (n *Node) validateLocal(reqID uint64, items []wire.BVer) bool {
	for _, it := range items {
		o := n.obj(it.Obj, false)
		if o == nil {
			return false
		}
		o.mu.Lock()
		ok := o.ver == it.Ver && (o.locked == 0 || o.locked == reqID)
		o.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

func (n *Node) handleBackupLocal(ups []wire.Update) {
	for _, u := range ups {
		o := n.obj(u.Obj, true)
		o.mu.Lock()
		if u.Version > o.ver {
			o.ver = u.Version
			o.data = u.Data
		}
		o.mu.Unlock()
	}
}

func (n *Node) commitLocal(reqID uint64, ups []wire.Update) {
	for _, u := range ups {
		o := n.obj(u.Obj, true)
		o.mu.Lock()
		if u.Version > o.ver {
			o.ver = u.Version
			o.data = u.Data
		}
		if o.locked == reqID {
			o.locked = 0
		}
		o.mu.Unlock()
	}
}

var _ dbapi.DB = (*Node)(nil)
