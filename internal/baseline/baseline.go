// Package baseline implements the conventional distributed-transaction
// design Zeus is compared against (§6.1): static sharding, remote object
// accesses by RPC, and an OCC + two-phase commit in the style of FaRM/FaSST:
//
//	execute (remote reads) → LOCK write set at primaries (version-checked)
//	→ VALIDATE read set → UPDATE BACKUPS → UPDATE PRIMARIES (apply+unlock)
//
// Every phase blocks the calling worker for a round trip — exactly the
// behaviour the paper attributes to distributed commit ("a node cannot start
// the next transaction on the same set of objects until the commit is
// finished"). There is no dynamic re-sharding: when the access pattern
// drifts, transactions simply become remote, which is the effect measured in
// Figures 8 and 9.
//
// The same machinery with a single primary node doubles as the "Redis-like
// blocking store" of Figure 13 (every access a blocking RPC, no replication).
package baseline

import (
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/transport"
	"zeus/internal/wire"
)

// NoVersion marks a lock request that does not check the version (blind
// write without a preceding read).
const NoVersion = ^uint64(0)

// Config tunes the baseline deployment.
type Config struct {
	// Nodes is the deployment size; primary(obj) = obj mod Nodes.
	Nodes int
	// Degree is the replication degree (primary + Degree-1 backups).
	Degree int
	// RPCTimeout bounds each blocking phase.
	RPCTimeout time.Duration
}

// DefaultConfig mirrors the paper's baselines: 3-way replication.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Degree: 3, RPCTimeout: time.Second}
}

// bobj is one object replica in the baseline store.
type bobj struct {
	mu     sync.Mutex
	ver    uint64
	data   []byte
	locked uint64 // holding request id, 0 when free
}

// Node is one baseline server (and transaction coordinator).
type Node struct {
	id  wire.NodeID
	cfg Config
	tr  transport.Transport

	storeMu sync.RWMutex
	objs    map[wire.ObjectID]*bobj

	nextReq atomic.Uint64 // low 48 bits of a reqID; see newReqID
	callMu  sync.Mutex
	calls   map[uint64]chan wire.Msg

	stCommits atomic.Uint64
	stAborts  atomic.Uint64
	stRemote  atomic.Uint64 // remote read RPCs issued
}

// Stats aggregates baseline counters.
type Stats struct {
	Commits     uint64
	Aborts      uint64
	RemoteReads uint64
}

// NewNode creates a baseline node on the transport and installs handlers on
// the router.
func NewNode(id wire.NodeID, tr transport.Transport, r *transport.Router, cfg Config) *Node {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 3
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = time.Second
	}
	n := &Node{
		id:    id,
		cfg:   cfg,
		tr:    tr,
		objs:  make(map[wire.ObjectID]*bobj),
		calls: make(map[uint64]chan wire.Msg),
	}
	r.HandleMany(n.Handle,
		wire.KindBReadReq, wire.KindBReadResp, wire.KindBLock, wire.KindBLockResp,
		wire.KindBValidate, wire.KindBValidateResp, wire.KindBBackup,
		wire.KindBBackupAck, wire.KindBCommit, wire.KindBCommitAck, wire.KindBAbort)
	return n
}

// Stats returns a snapshot of counters.
func (n *Node) Stats() Stats {
	return Stats{Commits: n.stCommits.Load(), Aborts: n.stAborts.Load(), RemoteReads: n.stRemote.Load()}
}

// Primary returns the static home node of obj.
func (n *Node) Primary(obj wire.ObjectID) wire.NodeID {
	return wire.NodeID(uint64(obj) % uint64(n.cfg.Nodes))
}

// Backups returns the backup nodes of obj (the Degree-1 nodes after the
// primary).
func (n *Node) Backups(obj wire.ObjectID) []wire.NodeID {
	out := make([]wire.NodeID, 0, n.cfg.Degree-1)
	p := uint64(n.Primary(obj))
	for i := 1; i < n.cfg.Degree && i < n.cfg.Nodes; i++ {
		out = append(out, wire.NodeID((p+uint64(i))%uint64(n.cfg.Nodes)))
	}
	return out
}

// newReqID mints a deployment-unique request id: the node id in the high
// bits, a local counter in the low 48. Lock ownership (bobj.locked) is
// compared against reqIDs from *every* coordinator, so a per-node counter
// alone lets two coordinators collide on the same id and silently treat each
// other's OCC locks as their own — two writers both "lock", both validate,
// and one update is lost.
func (n *Node) newReqID() uint64 {
	return uint64(n.id)<<48 | (n.nextReq.Add(1) & (1<<48 - 1))
}

// Seed installs an object replica at this node directly (initial sharding).
func (n *Node) Seed(obj wire.ObjectID, ver uint64, data []byte) {
	n.storeMu.Lock()
	n.objs[obj] = &bobj{ver: ver, data: append([]byte(nil), data...)}
	n.storeMu.Unlock()
}

func (n *Node) obj(id wire.ObjectID, create bool) *bobj {
	n.storeMu.RLock()
	o, ok := n.objs[id]
	n.storeMu.RUnlock()
	if ok || !create {
		return o
	}
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if o, ok = n.objs[id]; ok {
		return o
	}
	o = &bobj{}
	n.objs[id] = o
	return o
}

// call performs one blocking RPC.
func (n *Node) call(to wire.NodeID, reqID uint64, m wire.Msg) (wire.Msg, bool) {
	ch := make(chan wire.Msg, 1)
	n.callMu.Lock()
	n.calls[reqID] = ch
	n.callMu.Unlock()
	defer func() {
		n.callMu.Lock()
		delete(n.calls, reqID)
		n.callMu.Unlock()
	}()
	if err := n.tr.Send(to, m); err != nil {
		return nil, false
	}
	select {
	case resp := <-ch:
		return resp, true
	case <-time.After(n.cfg.RPCTimeout):
		return nil, false
	}
}

func (n *Node) reply(reqID uint64, m wire.Msg) {
	n.callMu.Lock()
	ch, ok := n.calls[reqID]
	n.callMu.Unlock()
	if ok {
		select {
		case ch <- m:
		default:
		}
	}
}

// Handle dispatches one inbound baseline message.
func (n *Node) Handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.BReadReq:
		n.handleRead(from, v)
	case *wire.BLock:
		n.handleLock(from, v)
	case *wire.BValidate:
		n.handleValidate(from, v)
	case *wire.BBackup:
		n.handleBackup(from, v)
	case *wire.BCommit:
		n.handleCommit(from, v)
	case *wire.BAbort:
		n.handleAbort(v)
	case *wire.BReadResp:
		n.reply(v.ReqID, v)
	case *wire.BLockResp:
		n.reply(v.ReqID, v)
	case *wire.BValidateResp:
		n.reply(v.ReqID, v)
	case *wire.BBackupAck:
		n.reply(v.ReqID, v)
	case *wire.BCommitAck:
		n.reply(v.ReqID, v)
	}
}

func (n *Node) handleRead(from wire.NodeID, m *wire.BReadReq) {
	resp := &wire.BReadResp{ReqID: m.ReqID, Obj: m.Obj}
	if o := n.obj(m.Obj, false); o != nil {
		o.mu.Lock()
		if o.locked == 0 {
			resp.OK = true
			resp.Ver = o.ver
			resp.Data = append([]byte(nil), o.data...)
		}
		o.mu.Unlock()
	}
	_ = n.tr.Send(from, resp)
}

func (n *Node) handleLock(from wire.NodeID, m *wire.BLock) {
	ok := true
	var taken []*bobj
	for _, it := range m.Items {
		o := n.obj(it.Obj, true)
		o.mu.Lock()
		free := o.locked == 0 || o.locked == m.ReqID
		match := it.Ver == NoVersion || o.ver == it.Ver
		if free && match {
			o.locked = m.ReqID
			taken = append(taken, o)
			o.mu.Unlock()
			continue
		}
		o.mu.Unlock()
		ok = false
		break
	}
	if !ok {
		for _, o := range taken {
			o.mu.Lock()
			if o.locked == m.ReqID {
				o.locked = 0
			}
			o.mu.Unlock()
		}
	}
	_ = n.tr.Send(from, &wire.BLockResp{ReqID: m.ReqID, From: n.id, OK: ok})
}

func (n *Node) handleValidate(from wire.NodeID, m *wire.BValidate) {
	ok := true
	for _, it := range m.Items {
		o := n.obj(it.Obj, false)
		if o == nil {
			ok = false
			break
		}
		o.mu.Lock()
		if o.ver != it.Ver || (o.locked != 0 && o.locked != m.ReqID) {
			ok = false
		}
		o.mu.Unlock()
		if !ok {
			break
		}
	}
	_ = n.tr.Send(from, &wire.BValidateResp{ReqID: m.ReqID, From: n.id, OK: ok})
}

func (n *Node) handleBackup(from wire.NodeID, m *wire.BBackup) {
	for _, u := range m.Updates {
		o := n.obj(u.Obj, true)
		o.mu.Lock()
		if u.Version > o.ver {
			o.ver = u.Version
			o.data = u.Data
		}
		o.mu.Unlock()
	}
	_ = n.tr.Send(from, &wire.BBackupAck{ReqID: m.ReqID, From: n.id})
}

func (n *Node) handleCommit(from wire.NodeID, m *wire.BCommit) {
	for _, u := range m.Updates {
		o := n.obj(u.Obj, true)
		o.mu.Lock()
		if u.Version > o.ver {
			o.ver = u.Version
			o.data = u.Data
		}
		if o.locked == m.ReqID {
			o.locked = 0
		}
		o.mu.Unlock()
	}
	_ = n.tr.Send(from, &wire.BCommitAck{ReqID: m.ReqID, From: n.id})
}

func (n *Node) handleAbort(m *wire.BAbort) {
	for _, id := range m.Objs {
		if o := n.obj(id, false); o != nil {
			o.mu.Lock()
			if o.locked == m.ReqID {
				o.locked = 0
			}
			o.mu.Unlock()
		}
	}
}

// localRead reads an object homed at this node.
func (n *Node) localRead(obj wire.ObjectID) (uint64, []byte, bool) {
	o := n.obj(obj, false)
	if o == nil {
		return 0, nil, false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.locked != 0 {
		return 0, nil, false
	}
	return o.ver, append([]byte(nil), o.data...), true
}
