// Package netsim provides an in-process simulated datacenter network.
//
// The paper evaluates Zeus on a six-node cluster with 40 Gbps links and a
// custom reliable messaging library over DPDK. This repository substitutes a
// simulated network: unicast frames between endpoints with configurable
// latency jitter, probabilistic loss and duplication, reordering (emerging
// from latency jitter and duplication), dynamic partitions and crash-stop
// endpoints. The reliable transport (internal/transport) recovers loss and
// duplication exactly like the paper's messaging layer, so protocol-visible
// behaviour (message counts, round trips, fault tolerance) is preserved.
package netsim

import (
	"container/heap"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/retry"
	"zeus/internal/wire"
)

// Config controls the simulated fabric.
type Config struct {
	// Seed makes loss/duplication/latency decisions reproducible.
	Seed int64
	// MinLatency/MaxLatency bound the uniformly distributed one-way frame
	// latency. Equal values give a fixed latency; distinct values give
	// jitter, and with it reordering.
	MinLatency time.Duration
	MaxLatency time.Duration
	// LossProb is the probability a frame is silently dropped.
	LossProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// DeterministicDrops derives every loss/duplication decision from a
	// hash of (Seed, source, destination, per-link frame index) instead of
	// the shared RNG stream. The shared stream is consumed in whatever
	// order goroutines happen to call Send, so identical seeds still yield
	// different fault patterns run to run; in deterministic mode the n-th
	// frame on a given link is dropped (or duplicated) in every run with
	// the same seed, making loss-recovery tests reproducible. Latency
	// jitter still comes from the RNG (it orders deliveries, not faults).
	DeterministicDrops bool
	// InboxDepth bounds each endpoint's receive queue; frames arriving at
	// a full inbox are dropped (a lossy network may do that too).
	InboxDepth int
}

// DefaultConfig models a healthy intra-rack fabric: 20–80 µs one-way latency
// and no loss. Tests crank LossProb/DupProb up to stress the protocols.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		MinLatency: 20 * time.Microsecond,
		MaxLatency: 80 * time.Microsecond,
		InboxDepth: 4096,
	}
}

// Frame is one unicast datagram.
type Frame struct {
	From    wire.NodeID
	Payload []byte
}

// Stats aggregates fabric counters.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Lost      uint64
	Duplicate uint64
	Blocked   uint64 // dropped by partition or dead endpoint
	Overflow  uint64 // dropped at a full inbox
	Bytes     uint64 // payload bytes handed to the fabric
}

// Network is the simulated fabric connecting endpoints.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[wire.NodeID]*Endpoint
	blocked   map[[2]wire.NodeID]bool
	linkSeq   map[[2]wire.NodeID]uint64 // per-link frame index (deterministic mode)
	closed    bool
	done      chan struct{}

	// Delivery scheduler: a single goroutine drains a deadline-ordered
	// heap, spin-waiting for sub-millisecond latencies (Go timers are too
	// coarse to model microsecond-scale fabrics).
	schedMu   sync.Mutex
	schedHeap deliveryHeap
	schedWake chan struct{}

	sent      atomic.Uint64
	delivered atomic.Uint64
	lost      atomic.Uint64
	duplicate atomic.Uint64
	blockedCt atomic.Uint64
	overflow  atomic.Uint64
	bytes     atomic.Uint64
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 4096
	}
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: make(map[wire.NodeID]*Endpoint),
		blocked:   make(map[[2]wire.NodeID]bool),
		linkSeq:   make(map[[2]wire.NodeID]uint64),
		done:      make(chan struct{}),
		schedWake: make(chan struct{}, 1),
	}
	go n.schedulerLoop()
	return n
}

// deliveryHeap orders pending frames by delivery deadline.
type scheduled struct {
	at  time.Time
	dst *Endpoint
	f   Frame
	seq uint64 // tie-break keeps same-deadline frames FIFO
}

type deliveryHeap []scheduled

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x interface{}) { *h = append(*h, x.(scheduled)) }
func (h *deliveryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

var schedSeq atomic.Uint64

// sleepSlack is the calibrated overshoot of a short time.Sleep on this host.
// The delivery scheduler sleeps until sleepSlack before a frame's deadline
// and spin-waits only the remainder, so delivery-time accuracy is preserved
// while the spin window shrinks from a fixed 1.5 ms (a full core burned per
// inter-event gap, skewing RTT samples in multi-node tests) to the tens of
// microseconds the clock actually needs.
var (
	sleepSlackOnce sync.Once
	sleepSlackVal  time.Duration
)

func sleepSlack() time.Duration {
	sleepSlackOnce.Do(func() {
		worst := retry.TimerGranularity()
		worst += worst / 2 // headroom for calibration-time luck
		if worst < 50*time.Microsecond {
			worst = 50 * time.Microsecond
		}
		if worst > 2*time.Millisecond {
			worst = 2 * time.Millisecond // coarse-clock hosts: old behaviour
		}
		sleepSlackVal = worst
	})
	return sleepSlackVal
}

// schedulerLoop delivers frames at their deadlines. Waits longer than the
// calibrated sleep overshoot use a real timer; only the final calibrated
// slack is spin-waited with Gosched so microsecond fabric latencies are
// honoured without pinning a core.
func (n *Network) schedulerLoop() {
	slack := sleepSlack()
	for {
		n.schedMu.Lock()
		if n.schedHeap.Len() == 0 {
			n.schedMu.Unlock()
			select {
			case <-n.schedWake:
				continue
			case <-n.done:
				return
			}
		}
		next := n.schedHeap[0].at
		wait := time.Until(next)
		if wait > slack {
			n.schedMu.Unlock()
			select {
			case <-time.After(wait - slack):
			case <-n.schedWake:
			case <-n.done:
				return
			}
			continue
		}
		if wait > 0 {
			n.schedMu.Unlock()
			deadline := next
		spin:
			for time.Now().Before(deadline) {
				select {
				case <-n.schedWake:
					// A newly queued frame may beat the current head;
					// re-evaluate instead of spinning past it.
					break spin
				case <-n.done:
					return
				default:
					runtime.Gosched()
				}
			}
			continue
		}
		it := heap.Pop(&n.schedHeap).(scheduled)
		n.schedMu.Unlock()
		n.deliverNow(it.dst, it.f)
	}
}

func (n *Network) deliverNow(dst *Endpoint, f Frame) {
	if dst.down.Load() {
		n.blockedCt.Add(1)
		return
	}
	select {
	case <-n.done:
		n.blockedCt.Add(1)
	case dst.inbox <- f:
		n.delivered.Add(1)
	default:
		n.overflow.Add(1)
	}
}

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = errors.New("netsim: closed")

// Endpoint is one attachment point (a NIC) on the fabric.
type Endpoint struct {
	id    wire.NodeID
	net   *Network
	inbox chan Frame
	down  atomic.Bool
}

// Endpoint registers (or returns) the endpoint for node id.
func (n *Network) Endpoint(id wire.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{id: id, net: n, inbox: make(chan Frame, n.cfg.InboxDepth)}
	n.endpoints[id] = ep
	return ep
}

// Partition blocks traffic between a and b in both directions.
func (n *Network) Partition(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]wire.NodeID{a, b}] = true
	n.blocked[[2]wire.NodeID{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]wire.NodeID{a, b})
	delete(n.blocked, [2]wire.NodeID{b, a})
}

// SetDown marks an endpoint crashed (true) or revived (false). A down
// endpoint neither sends nor receives; in-flight frames to it are dropped.
func (n *Network) SetDown(id wire.NodeID, down bool) {
	if ep := n.Endpoint(id); ep != nil {
		ep.down.Store(down)
	}
}

// Stats returns a snapshot of fabric counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.sent.Load(),
		Delivered: n.delivered.Load(),
		Lost:      n.lost.Load(),
		Duplicate: n.duplicate.Load(),
		Blocked:   n.blockedCt.Load(),
		Overflow:  n.overflow.Load(),
		Bytes:     n.bytes.Load(),
	}
}

// Close tears the fabric down; receivers unblock with ok=false.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.down.Store(true)
	}
	close(n.done)
}

// ID returns the endpoint's node id.
func (ep *Endpoint) ID() wire.NodeID { return ep.id }

// Send transmits one frame to dst. The payload is not retained; delivery is
// asynchronous and unreliable per the network configuration.
func (ep *Endpoint) Send(dst wire.NodeID, payload []byte) error {
	n := ep.net
	if ep.down.Load() {
		return ErrClosed
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dstEp, ok := n.endpoints[dst]
	blocked := n.blocked[[2]wire.NodeID{ep.id, dst}]
	var lost, dup bool
	var lat, lat2 time.Duration
	if ok && !blocked {
		if n.cfg.DeterministicDrops {
			link := [2]wire.NodeID{ep.id, dst}
			idx := n.linkSeq[link]
			n.linkSeq[link] = idx + 1
			lost = n.cfg.LossProb > 0 && linkHash(n.cfg.Seed, ep.id, dst, idx, 0) < n.cfg.LossProb
			dup = n.cfg.DupProb > 0 && linkHash(n.cfg.Seed, ep.id, dst, idx, 1) < n.cfg.DupProb
		} else {
			lost = n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb
			dup = n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb
		}
		lat = n.latencyLocked()
		lat2 = n.latencyLocked()
	}
	n.mu.Unlock()

	n.sent.Add(1)
	n.bytes.Add(uint64(len(payload)))
	if !ok || blocked {
		n.blockedCt.Add(1)
		return nil
	}
	if lost {
		n.lost.Add(1)
		return nil
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	f := Frame{From: ep.id, Payload: buf}
	n.deliverAfter(dstEp, f, lat)
	if dup {
		n.duplicate.Add(1)
		n.deliverAfter(dstEp, f, lat2)
	}
	return nil
}

// linkHash maps (seed, link, frame index, decision kind) to [0,1) via a
// splitmix64 finalizer, so deterministic-drop decisions are independent of
// goroutine scheduling.
func linkHash(seed int64, from, to wire.NodeID, idx uint64, kind uint64) float64 {
	x := uint64(seed) ^ uint64(from)<<40 ^ uint64(to)<<48 ^ idx<<2 ^ kind
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func (n *Network) latencyLocked() time.Duration {
	if n.cfg.MaxLatency == n.cfg.MinLatency {
		return n.cfg.MinLatency
	}
	spread := n.cfg.MaxLatency - n.cfg.MinLatency
	return n.cfg.MinLatency + time.Duration(n.rng.Int63n(int64(spread)))
}

func (n *Network) deliverAfter(dst *Endpoint, f Frame, lat time.Duration) {
	if lat <= 0 {
		n.deliverNow(dst, f)
		return
	}
	n.schedMu.Lock()
	heap.Push(&n.schedHeap, scheduled{
		at: time.Now().Add(lat), dst: dst, f: f, seq: schedSeq.Add(1),
	})
	n.schedMu.Unlock()
	select {
	case n.schedWake <- struct{}{}:
	default:
	}
}

// Recv blocks for the next frame; ok=false means the network closed.
func (ep *Endpoint) Recv() (Frame, bool) {
	select {
	case f := <-ep.inbox:
		return f, true
	case <-ep.net.done:
		return Frame{}, false
	}
}

// TryRecv returns the next frame without blocking.
func (ep *Endpoint) TryRecv() (Frame, bool) {
	select {
	case f := <-ep.inbox:
		return f, true
	default:
		return Frame{}, false
	}
}
