package netsim

import (
	"sync"
	"testing"
	"time"

	"zeus/internal/wire"
)

func perfect() Config {
	return Config{Seed: 1, MinLatency: 0, MaxLatency: 0, InboxDepth: 1024}
}

func TestDeliverBasic(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f, ok := b.Recv()
	if !ok || string(f.Payload) != "hi" || f.From != 0 {
		t.Fatalf("got %+v ok=%v", f, ok)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	buf := []byte("abc")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutation after send must not corrupt the frame
	f, _ := b.Recv()
	if string(f.Payload) != "abc" {
		t.Fatalf("payload aliased sender buffer: %q", f.Payload)
	}
}

func TestLossDropsFrames(t *testing.T) {
	cfg := perfect()
	cfg.LossProb = 1.0
	n := New(cfg)
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	for i := 0; i < 50; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("frame delivered despite 100% loss")
	}
	if st := n.Stats(); st.Lost != 50 {
		t.Fatalf("lost = %d, want 50", st.Lost)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	cfg := perfect()
	cfg.DupProb = 1.0
	n := New(cfg)
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	if err := a.Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	got := 0
	for got < 2 {
		select {
		case <-b.inbox:
			got++
		case <-deadline:
			t.Fatalf("only %d copies delivered", got)
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	n.Partition(0, 1)
	if err := a.Send(1, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("frame crossed a partition")
	}
	n.Heal(0, 1)
	if err := a.Send(1, []byte("open")); err != nil {
		t.Fatal(err)
	}
	f, ok := b.Recv()
	if !ok || string(f.Payload) != "open" {
		t.Fatalf("post-heal delivery failed: %+v %v", f, ok)
	}
}

func TestDownEndpointDropsTraffic(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	n.SetDown(1, true)
	if err := a.Send(1, []byte("dead")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("dead endpoint received a frame")
	}
	// A down endpoint cannot send either.
	if err := b.Send(0, []byte("zombie")); err == nil {
		t.Fatal("down endpoint sent a frame")
	}
	n.SetDown(1, false)
	if err := a.Send(1, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if f, ok := b.Recv(); !ok || string(f.Payload) != "alive" {
		t.Fatalf("revived endpoint: %+v %v", f, ok)
	}
}

func TestUnknownDestinationDoesNotBlock(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	a := n.Endpoint(0)
	if err := a.Send(42, []byte("void")); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.Blocked != 1 {
		t.Fatalf("blocked = %d, want 1", st.Blocked)
	}
}

func TestLatencyOrderingJitter(t *testing.T) {
	cfg := Config{Seed: 7, MinLatency: 0, MaxLatency: 2 * time.Millisecond, InboxDepth: 1024}
	n := New(cfg)
	defer n.Close()
	a, b := n.Endpoint(0), n.Endpoint(1)
	const N = 64
	for i := 0; i < N; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make([]byte, 0, N)
	for len(seen) < N {
		f, ok := b.Recv()
		if !ok {
			t.Fatal("network closed early")
		}
		seen = append(seen, f.Payload[0])
	}
	inOrder := true
	for i := 1; i < N; i++ {
		if seen[i] < seen[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Log("note: jittered fabric happened to deliver in order (allowed, but unlikely)")
	}
}

func TestConcurrentSendersRace(t *testing.T) {
	n := New(DefaultConfig())
	defer n.Close()
	dst := n.Endpoint(9)
	var wg sync.WaitGroup
	for s := wire.NodeID(0); s < 4; s++ {
		src := n.Endpoint(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = src.Send(9, []byte{1, 2, 3})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			if _, ok := dst.Recv(); !ok {
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out draining frames")
	}
	if st := n.Stats(); st.Delivered != 400 {
		t.Fatalf("delivered = %d, want 400", st.Delivered)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	n := New(perfect())
	b := n.Endpoint(1)
	done := make(chan bool)
	go func() {
		_, ok := b.Recv()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	n.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Double close is safe; post-close sends fail.
	n.Close()
	if err := n.Endpoint(0).Send(1, nil); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestEndpointIsStable(t *testing.T) {
	n := New(perfect())
	defer n.Close()
	if n.Endpoint(3) != n.Endpoint(3) {
		t.Fatal("Endpoint must return a stable instance per id")
	}
	if n.Endpoint(3).ID() != 3 {
		t.Fatal("wrong id")
	}
}

// lossPattern sends n frames over one link and returns which were dropped.
func lossPattern(cfg Config, n int) []bool {
	nw := New(cfg)
	defer nw.Close()
	src := nw.Endpoint(0)
	nw.Endpoint(1)
	pattern := make([]bool, n)
	for i := 0; i < n; i++ {
		before := nw.Stats().Lost
		_ = src.Send(1, []byte{byte(i)})
		pattern[i] = nw.Stats().Lost > before
	}
	return pattern
}

func TestDeterministicDropsReproducible(t *testing.T) {
	cfg := Config{Seed: 99, LossProb: 0.2, DupProb: 0.1, DeterministicDrops: true}
	const N = 500
	a := lossPattern(cfg, N)
	b := lossPattern(cfg, N)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: run1 dropped=%v run2 dropped=%v", i, a[i], b[i])
		}
		if a[i] {
			drops++
		}
	}
	// The hash should approximate the configured rate (20% ± 5pp).
	if drops < N*15/100 || drops > N*25/100 {
		t.Fatalf("deterministic loss rate %d/%d far from 20%%", drops, N)
	}
	// A different seed must give a different pattern.
	cfg.Seed = 100
	c := lossPattern(cfg, N)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == N {
		t.Fatal("seed change did not change the drop pattern")
	}
}

func TestDeterministicDropsIndependentOfInterleaving(t *testing.T) {
	// Frames on link 0→1 keep their fates even when another link's
	// traffic is interleaved differently between runs.
	run := func(interleave bool) []bool {
		cfg := Config{Seed: 7, LossProb: 0.2, DeterministicDrops: true}
		nw := New(cfg)
		defer nw.Close()
		src := nw.Endpoint(0)
		other := nw.Endpoint(2)
		nw.Endpoint(1)
		pattern := make([]bool, 200)
		for i := range pattern {
			if interleave {
				_ = other.Send(1, []byte("noise"))
			}
			before := nw.Stats().Lost
			_ = src.Send(1, []byte{byte(i)})
			// Subtract losses caused by the noise frame: read the delta
			// strictly around the 0→1 send.
			pattern[i] = nw.Stats().Lost > before
		}
		return pattern
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d fate changed with interleaved traffic", i)
		}
	}
}
