package ownership

import (
	"fmt"
	"strings"

	"zeus/internal/obs"
	"zeus/internal/wire"
)

// nackReasonCount sizes the per-reason NACK counter family (the reasons are
// a compact enum ending at NackNotDriver).
const nackReasonCount = int(wire.NackNotDriver) + 1

// engineObs is the ownership engine's cached observability bundle (see
// commit.engineObs): handles resolved once at wiring time, record sites pay
// a nil check plus an atomic.
type engineObs struct {
	reg *obs.Registry

	// acquireNS is the successful Acquire latency (REQ to final ACK across
	// retries — the metric of the paper's Figure 12).
	acquireNS *obs.Histogram
	// nacks counts NACKs received by this requester, indexed by
	// wire.NackReason — the breakdown that tells a pending-commit stall
	// from directory contention.
	nacks [nackReasonCount]*obs.Counter
	// migrations counts successful acquisitions per directory shard: the
	// per-shard heat signal load-aware placement (Lion, PAPERS.md) needs.
	migrations []*obs.Counter
}

// SetObs wires the observability registry. Must be called before the engine
// receives traffic (node wiring time). The per-reason and per-shard counter
// families have computed names; they register here, once, never on the
// record path.
func (e *Engine) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	b := &engineObs{reg: r, acquireNS: r.Histogram("own_acquire_ns")}
	for i := range b.nacks {
		name := strings.ReplaceAll(wire.NackReason(i).String(), "-", "_")
		//lint:allow obsrecord the per-reason NACK counter family is registered once at wiring time
		b.nacks[i] = r.Counter(fmt.Sprintf("own_nack_%s_total", name))
	}
	b.migrations = make([]*obs.Counter, e.dir.Shards())
	for s := range b.migrations {
		//lint:allow obsrecord per-shard migration heat counters are registered once at wiring time
		b.migrations[s] = r.Counter(fmt.Sprintf("own_migrations_shard%d_total", s))
	}
	r.CounterFunc("own_requests_total", e.stRequests.Load)
	r.CounterFunc("own_succeeded_total", e.stSucceeded.Load)
	r.CounterFunc("own_nacks_sent_total", e.stNacks.Load)
	r.CounterFunc("own_timeouts_total", e.stTimeouts.Load)
	r.CounterFunc("own_replays_total", e.stReplays.Load)
	e.obs = b
}

// MigrationsByShard returns the per-shard successful-acquisition counts (nil
// when observability is off) — the heat vector placement experiments read.
func (e *Engine) MigrationsByShard() []uint64 {
	if e.obs == nil {
		return nil
	}
	out := make([]uint64, len(e.obs.migrations))
	for i, c := range e.obs.migrations {
		out[i] = c.Load()
	}
	return out
}
