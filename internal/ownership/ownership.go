// Package ownership implements Zeus' reliable ownership protocol (§4): the
// atomic, fault-tolerant migration of object data and access rights between
// nodes.
//
// Roles per request:
//
//   - requester: the node that needs a new access level; blocks the
//     application thread until the request completes (1.5 RTT fast path).
//   - driver: the directory node the REQ was sent to; mints the ownership
//     timestamp o_ts = ⟨obj_ver+1, node_id⟩ and invalidates the others.
//   - arbiters: the directory nodes plus the current owner (plus, for the
//     sharding request types of §6.2, affected readers). They resolve
//     contention by lexicographic o_ts comparison.
//
// The failure-free flow (top of Figure 3): REQ → driver mints o_ts, state
// Drive, INVs remaining arbiters → arbiters invalidate and ACK directly to
// the requester (the owner piggybacks the data when the requester holds no
// replica; it NACKs if the object has pending reliable commits) → requester
// applies first, unblocks the application, and VALs all arbiters.
//
// Recovery (bottom of Figure 3): after a membership epoch bump, any arbiter
// stuck with a pending request replays the exact same INV from its stored
// state (arb-replay); ACKs flow to the replaying driver, which RESPs a live
// requester (so the requester still applies first) or VALs directly when the
// requester died.
package ownership

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/directory"
	"zeus/internal/membership"
	"zeus/internal/retry"
	"zeus/internal/safetime"
	"zeus/internal/shardmap"
	"zeus/internal/storage"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// transferYield is how long an owner defers new local write grants after
// NACKing a transfer for pending commits. It must comfortably exceed the
// requester's worst-case back-off (MaxBackoff 5ms + equal jitter = 10ms)
// plus the REQ→INV network hops, so the next probe is guaranteed to land
// inside the yield window with a drained pipeline.
const transferYield = 25 * time.Millisecond

// DefaultRetryPolicy is the NACK/timeout back-off of the ownership protocol
// (§6.2): exponential with full jitter, unbounded attempts — the Acquire
// deadline, not the policy, decides when to give up.
func DefaultRetryPolicy() retry.Policy {
	return retry.Policy{
		InitialBackoff: 50 * time.Microsecond,
		MaxBackoff:     5 * time.Millisecond,
		Multiplier:     2,
		Jitter:         1,
	}
}

// Errors returned by Acquire and friends.
var (
	// ErrTimeout: the request did not complete within the deadline.
	ErrTimeout = errors.New("ownership: request timed out")
	// ErrAborted: the request was NACKed and retries were exhausted.
	ErrAborted = errors.New("ownership: request aborted")
	// ErrUnknownObject: the directory has no entry for the object.
	ErrUnknownObject = errors.New("ownership: unknown object")
	// ErrClosed: the engine is shut down.
	ErrClosed = errors.New("ownership: engine closed")
)

// Config tunes the engine.
type Config struct {
	// Directory resolves object → shard → arbitration drivers (§6.2). When
	// nil, the engine falls back to the degenerate 1-shard directory over
	// DirNodes — the pre-sharding behaviour.
	Directory directory.Directory
	// DirNodes is the fixed driver set of the compat shim used when
	// Directory is nil (the paper's evaluation replicates the directory
	// across three fixed nodes).
	DirNodes wire.Bitmap
	// AttemptTimeout bounds one REQ→final-ACK attempt.
	AttemptTimeout time.Duration
	// Deadline bounds the whole Acquire (across retries and back-off).
	Deadline time.Duration
	// Retry paces the NACK/timeout retry loop (§6.2 deadlock circumvention:
	// exponential back-off with jitter). Back-off sleeps are interrupted
	// early by a membership epoch change — "owner busy" waits out the
	// back-off, "owner dead" re-resolves the moment the view changes.
	Retry retry.Policy
	// StaleAfter is how long a pending arbitration may linger before a
	// driver force-completes it with an arb-replay (liveness escape for
	// requesters that died or gave up before validating).
	StaleAfter time.Duration
	// OnLatency, if set, observes the latency of every successful
	// ownership request (the metric of Figure 12).
	OnLatency func(time.Duration)
}

// DefaultConfig returns simulation-friendly timeouts.
func DefaultConfig(dirNodes wire.Bitmap) Config {
	return Config{
		DirNodes:       dirNodes,
		AttemptTimeout: 100 * time.Millisecond,
		Deadline:       5 * time.Second,
		Retry:          DefaultRetryPolicy(),
		StaleAfter:     250 * time.Millisecond,
	}
}

// Stats aggregates engine counters.
type Stats struct {
	Requests  uint64 // ownership requests issued (attempts)
	Succeeded uint64
	Nacks     uint64
	Timeouts  uint64
	Replays   uint64 // arb-replays driven during recovery
}

// Engine runs the ownership protocol on one node.
type Engine struct {
	self  wire.NodeID
	st    *store.Store
	tr    transport.Transport
	agent *membership.Agent
	cfg   Config
	dir   directory.Directory

	// HasPendingCommit is wired to the reliable-commit engine: the owner
	// NACKs ownership requests for objects with pending reliable commits.
	// It MUST NOT lock the object (the engine may hold the object mutex
	// when calling it); objects held by executing local transactions are
	// detected by the engine itself via Object.LocalOwner.
	HasPendingCommit func(wire.ObjectID) bool

	// Hot-path state is striped so concurrent requests on different
	// objects (or different request ids) never serialize on one engine
	// lock (§7: worker threads are independent):
	//
	//   - pending, striped by reqID: the requester-side ACK collection.
	//   - valsAwait, striped by ObjectID: VALs that overtook their INV.
	//
	// Only recovery keeps a single slow-path mutex (recovMu): arb-replays
	// happen around view changes, never in the failure-free flow, and the
	// atomic recovN count lets handleAck skip the lock entirely while no
	// replay is in flight.
	nextReq   atomic.Uint64
	pending   *shardmap.Striped[uint64, *pendingReq]
	valsAwait *shardmap.Striped[wire.ObjectID, wire.OTS]

	recovMu sync.Mutex
	recov   map[uint64]*recovState // recovery-driver side, by reqID
	recovN  atomic.Int32

	recovering atomic.Bool
	closed     chan struct{}
	once       sync.Once
	selfQ      chan wire.Msg

	// log, when set, records applied ownership grants (recGrant) so a
	// restarted node knows each object's last-known replica set and level.
	log *storage.Log

	// clock, when set, merges the commit timestamps riding on ownership
	// ACKs/RESPs into the node's HLC, and transferred data re-arms the
	// receiving replica's snapshot-read ring at the shipped CTS.
	clock *safetime.Clock

	// obs, when set (SetObs, wiring time), holds the cached metric handles
	// the request path records into; nil keeps the seed path (one branch).
	obs *engineObs

	stRequests  atomic.Uint64
	stSucceeded atomic.Uint64
	stNacks     atomic.Uint64
	stTimeouts  atomic.Uint64
	stReplays   atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand
}

type outcome struct {
	ok     bool
	reason wire.NackReason
	from   wire.NodeID // NACK sender (unknown-object opinions are per driver)
}

type pendingReq struct {
	id   uint64
	obj  wire.ObjectID
	mode wire.ReqMode

	mu          sync.Mutex
	arbiters    wire.Bitmap // learned from the first ACK
	acked       wire.Bitmap
	ts          wire.OTS
	newReplicas wire.ReplicaSet
	hasData     bool
	tversion    uint64
	data        []byte
	cts         uint64
	applied     bool
	done        chan outcome
}

type recovState struct {
	reqID    uint64
	obj      wire.ObjectID
	ts       wire.OTS
	arbiters wire.Bitmap
	acked    wire.Bitmap
	pend     store.PendingOwn
	hasData  bool
	tversion uint64
	data     []byte
	cts      uint64
	finished bool
}

// New creates an ownership engine. Call Register to hook it into a router,
// and set HasPendingCommit before serving traffic.
func New(self wire.NodeID, st *store.Store, tr transport.Transport, agent *membership.Agent, cfg Config) *Engine {
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 100 * time.Millisecond
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 5 * time.Second
	}
	if cfg.Retry == (retry.Policy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 250 * time.Millisecond
	}
	dir := cfg.Directory
	if dir == nil {
		dir = directory.NewStatic(cfg.DirNodes)
	}
	e := &Engine{
		self:             self,
		st:               st,
		tr:               tr,
		agent:            agent,
		cfg:              cfg,
		dir:              dir,
		pending:          shardmap.NewStriped[uint64, *pendingReq](shardmap.Mix64),
		recov:            make(map[uint64]*recovState),
		valsAwait:        shardmap.NewStriped[wire.ObjectID, wire.OTS](func(id wire.ObjectID) uint64 { return shardmap.Mix64(uint64(id)) }),
		closed:           make(chan struct{}),
		selfQ:            make(chan wire.Msg, 4096),
		rng:              rand.New(rand.NewSource(int64(self)*7919 + 1)),
		clock:            new(safetime.Clock),
		HasPendingCommit: func(wire.ObjectID) bool { return false },
	}
	go e.selfLoop()
	return e
}

// SetLog arms grant journaling. Must be called before the engine receives
// traffic (node wiring time); the engine never closes the log.
func (e *Engine) SetLog(l *storage.Log) { e.log = l }

// SetClock shares the node's hybrid-logical clock with the engine (node
// wiring time). Nil keeps a private clock so call sites stay nil-safe.
func (e *Engine) SetClock(c *safetime.Clock) {
	if c != nil {
		e.clock = c
	}
}

// Register installs the engine's handlers on the router.
func (e *Engine) Register(r *transport.Router) {
	r.HandleMany(e.Handle,
		wire.KindOwnReq, wire.KindOwnInv, wire.KindOwnAck,
		wire.KindOwnVal, wire.KindOwnNack, wire.KindOwnResp)
}

// Close shuts the engine down.
func (e *Engine) Close() { e.once.Do(func() { close(e.closed) }) }

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:  e.stRequests.Load(),
		Succeeded: e.stSucceeded.Load(),
		Nacks:     e.stNacks.Load(),
		Timeouts:  e.stTimeouts.Load(),
		Replays:   e.stReplays.Load(),
	}
}

// DrivesShard reports whether n drives the directory shard of obj (§6.2).
// With the 1-shard compat directory this degenerates to the old "is n a
// directory node" check.
func (e *Engine) DrivesShard(n wire.NodeID, obj wire.ObjectID) bool {
	return e.dir.DrivesShard(n, obj)
}

// Directory exposes the engine's directory resolver (tests and tooling).
func (e *Engine) Directory() directory.Directory { return e.dir }

// send routes self-addressed messages through an in-process queue (a node
// can be requester, driver and arbiter at once) and everything else through
// the transport.
func (e *Engine) send(to wire.NodeID, m wire.Msg) {
	if to == e.self {
		select {
		case e.selfQ <- m:
		case <-e.closed:
		}
		return
	}
	_ = e.tr.Send(to, m)
}

func (e *Engine) selfLoop() {
	for {
		select {
		case m := <-e.selfQ:
			e.Handle(e.self, m)
		case <-e.closed:
			return
		}
	}
}

// Handle dispatches one inbound ownership message.
func (e *Engine) Handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.OwnReq:
		e.handleReq(v)
	case *wire.OwnInv:
		e.handleInv(v)
	case *wire.OwnAck:
		e.handleAck(v)
	case *wire.OwnVal:
		e.handleVal(v)
	case *wire.OwnNack:
		e.handleNack(v)
	case *wire.OwnResp:
		e.handleResp(v)
	}
}

// ---------------------------------------------------------------------------
// Requester side.
// ---------------------------------------------------------------------------

// AcquireOwnership blocks until this node is the owner of obj (§4.1). It is
// invoked by the transaction layer the first time a write accesses an object
// this node does not own; subsequent transactions skip it entirely.
func (e *Engine) AcquireOwnership(obj wire.ObjectID) error {
	return e.run(obj, wire.AcquireOwner, 0)
}

// AcquireRead blocks until this node is a reader (or owner) of obj.
func (e *Engine) AcquireRead(obj wire.ObjectID) error {
	return e.run(obj, wire.AcquireReader, 0)
}

// Create registers a fresh object with the directory: this node becomes the
// owner and readers become replicas (they learn their role via the INVs).
func (e *Engine) Create(obj wire.ObjectID, readers wire.Bitmap) error {
	return e.run(obj, wire.CreateObject, readers.Remove(e.self))
}

// DropReader removes reader from obj's replica set, restoring the replication
// degree out of the critical path (§6.2).
func (e *Engine) DropReader(obj wire.ObjectID, reader wire.NodeID) error {
	return e.run(obj, wire.DropReader, wire.BitmapOf(reader))
}

// Delete unregisters obj deployment-wide; replicas discard their data.
func (e *Engine) Delete(obj wire.ObjectID) error {
	return e.run(obj, wire.DeleteObject, 0)
}

// levelSatisfied reports whether the node already holds the needed level.
func (e *Engine) levelSatisfied(obj wire.ObjectID, mode wire.ReqMode) bool {
	o, ok := e.st.Get(obj)
	if !ok {
		return false
	}
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.OState != store.OValid && o.OState != store.ORequest {
		return false
	}
	switch mode {
	case wire.AcquireOwner:
		return o.Level == wire.Owner
	case wire.AcquireReader:
		return o.Level == wire.Owner || o.Level == wire.Reader
	default:
		return false
	}
}

func (e *Engine) run(obj wire.ObjectID, mode wire.ReqMode, target wire.Bitmap) error {
	if e.levelSatisfied(obj, mode) {
		return nil
	}
	start := time.Now()
	deadline := start.Add(e.cfg.Deadline)
	retr := e.cfg.Retry.Start()

	var req *pendingReq
	newRequest := func() *pendingReq {
		id := uint64(e.self)<<48 | e.nextReq.Add(1)
		r := &pendingReq{id: id, obj: obj, mode: mode, done: make(chan outcome, 8)}
		e.pending.Put(id, r)
		return r
	}
	dropRequest := func(r *pendingReq) {
		e.pending.Delete(r.id)
	}

	req = newRequest()
	defer func() { dropRequest(req) }()

	// unknownFrom collects the DISTINCT drivers that answered
	// unknown-object. One driver's word is no longer final under the
	// sharded directory: a driver whose shard sync was force-readied (all
	// snapshot sources dead or silent) may hold no entry for an object its
	// peers know. The request only fails as unknown once several distinct
	// drivers — or every live driver of the shard — agree, and pickDriver
	// steers retries away from the drivers that already said unknown. The
	// static compat directory is always authoritative (fixed driver set,
	// never syncing), so there the first NACK stands and a genuine unknown
	// object keeps its one-round-trip error.
	var unknownFrom wire.Bitmap
	unknownRetries := 3
	if e.dir.Authoritative() {
		unknownRetries = 1
	}

	for {
		select {
		case <-e.closed:
			return ErrClosed
		default:
		}
		// Mark local o_state = Request (unless an INV owns the entry).
		o, _ := e.st.GetOrCreate(obj)
		o.Mu.Lock()
		if o.OState == store.OValid {
			o.OState = store.ORequest
		}
		o.Mu.Unlock()

		driver := e.pickDriver(obj, unknownFrom)
		e.stRequests.Add(1)
		e.send(driver, &wire.OwnReq{
			ReqID: req.id, Obj: obj, Requester: e.self, Mode: mode,
			Epoch: e.agent.Epoch(), Target: target,
			Shard: uint32(e.dir.ShardOf(obj)),
		})

		var out outcome
		timedOut := false
		select {
		case out = <-req.done:
		case <-time.After(e.cfg.AttemptTimeout):
			timedOut = true
		case <-e.closed:
			return ErrClosed
		}
		if ob := e.obs; ob != nil && !timedOut && !out.ok && int(out.reason) < nackReasonCount {
			ob.nacks[out.reason].Inc()
		}

		ownerBusy := false
		switch {
		case !timedOut && out.ok:
			e.stSucceeded.Add(1)
			if ob := e.obs; ob != nil {
				ob.acquireNS.RecordSince(start)
				// Bounds-checked: a placement change can grow the
				// shard count past the wiring-time family.
				if s := e.dir.ShardOf(obj); s < len(ob.migrations) {
					ob.migrations[s].Inc()
				}
			}
			if e.cfg.OnLatency != nil {
				e.cfg.OnLatency(time.Since(start))
			}
			return nil
		case !timedOut && out.reason == wire.NackUnknownObject:
			unknownFrom = unknownFrom.Add(out.from)
			liveDrivers := e.dir.DriversFor(obj).Intersect(e.agent.View().Live)
			if unknownFrom.Count() >= unknownRetries ||
				unknownFrom.Intersect(liveDrivers) == liveDrivers {
				e.resetRequestState(obj)
				return fmt.Errorf("%w: %d", ErrUnknownObject, obj)
			}
			dropRequest(req)
			req = newRequest()
		case !timedOut && out.reason == wire.NackPendingCommit:
			// Owner busy: retry the SAME request — the driver still
			// holds the arbitration in Drive state and will re-INV with
			// the same o_ts; the owner ACKs once its pipeline drains.
			ownerBusy = true
		default:
			// Lost arbitration, stale epoch, recovering, or timeout
			// (possibly a dead owner or driver): fresh arbitration with
			// a new request id.
			if timedOut {
				e.stTimeouts.Add(1)
			}
			dropRequest(req)
			req = newRequest()
		}

		if time.Now().After(deadline) {
			e.resetRequestState(obj)
			if timedOut {
				return fmt.Errorf("%w: obj %d (%v)", ErrTimeout, obj, mode)
			}
			return fmt.Errorf("%w: obj %d (%v): %v", ErrAborted, obj, mode, out.reason)
		}
		wait, ok := retr.Next()
		if !ok {
			e.resetRequestState(obj)
			return fmt.Errorf("%w: obj %d (%v): retry policy exhausted", ErrAborted, obj, mode)
		}
		// Back off (§6.2 deadlock circumvention), but wake immediately on
		// a membership epoch change: "owner busy" becomes "owner dead" the
		// moment the view changes, and the right move then is to re-resolve
		// through the directory at once rather than sleep out the back-off.
		// The signal must be captured before the epoch read: a view change
		// landing between the two would otherwise close the old channel
		// unseen and the new one would sleep through the whole back-off.
		wake := e.agent.ChangeSignal()
		epochBefore := e.agent.Epoch()
		_ = retry.Sleep(nil, wait, wake)
		if e.agent.Epoch() != epochBefore && ownerBusy {
			// The arbitration we were waiting on may have been force-
			// completed by recovery under a new epoch; start fresh.
			dropRequest(req)
			req = newRequest()
		}
	}
}

// resetRequestState restores o_state after an abandoned request.
func (e *Engine) resetRequestState(obj wire.ObjectID) {
	if o, ok := e.st.Get(obj); ok {
		o.Mu.Lock()
		if o.OState == store.ORequest {
			o.OState = store.OValid
		}
		o.Mu.Unlock()
	}
}

// pickDriver chooses an arbitrary live driver of obj's directory shard,
// preferring self when co-located with the shard (saves the first hop,
// §4.2). Drivers in avoid (they already answered unknown-object for this
// acquisition) are skipped while any other live driver remains, so repeated
// opinions really come from distinct drivers.
func (e *Engine) pickDriver(obj wire.ObjectID, avoid wire.Bitmap) wire.NodeID {
	drivers := e.dir.DriversFor(obj)
	live := e.agent.View().Live
	if drivers.Contains(e.self) && live.Contains(e.self) && !avoid.Contains(e.self) {
		return e.self
	}
	candidates := drivers.Intersect(live).Remove(e.self)
	if preferred := candidates &^ avoid; preferred != 0 {
		candidates = preferred
	}
	nodes := candidates.Nodes()
	if len(nodes) == 0 {
		if all := drivers.Nodes(); len(all) > 0 {
			return all[0] // nothing live: let it time out
		}
		return e.self
	}
	e.rngMu.Lock()
	n := nodes[e.rng.Intn(len(nodes))]
	e.rngMu.Unlock()
	return n
}

// ---------------------------------------------------------------------------
// Driver side.
// ---------------------------------------------------------------------------

func (e *Engine) handleReq(m *wire.OwnReq) {
	epoch := e.agent.Epoch()
	if m.Epoch != epoch {
		e.send(m.Requester, &wire.OwnNack{ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self, Reason: wire.NackWrongEpoch})
		return
	}
	if e.recovering.Load() {
		e.send(m.Requester, &wire.OwnNack{ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self, Reason: wire.NackRecovering})
		return
	}
	// Shard routing (§6.2): this node must drive the object's shard AND
	// agree with the requester on which shard that is (a shard-count
	// mismatch between placements would otherwise arbitrate with the wrong
	// driver set). Misrouted REQs are NACKed so the requester re-resolves
	// immediately instead of timing out.
	if !e.dir.DrivesShard(e.self, m.Obj) || int(m.Shard) != e.dir.ShardOf(m.Obj) {
		e.send(m.Requester, &wire.OwnNack{ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self, Reason: wire.NackNotDriver})
		return
	}
	// A freshly assigned driver NACKs until the shard's metadata snapshot
	// landed (directory.Service sync); arbitrating from an empty entry
	// would mis-grant unknown-object or mint a losing timestamp.
	if !e.dir.Ready(m.Obj) {
		e.send(m.Requester, &wire.OwnNack{ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self, Reason: wire.NackRecovering})
		return
	}
	o, _ := e.st.GetOrCreate(m.Obj)
	o.Mu.Lock()

	// Unknown object: no replica anywhere and not a creation request.
	// (This also covers deleted objects and catastrophic data loss.)
	if m.Mode != wire.CreateObject && o.Replicas.Owner == wire.NoNode &&
		o.Replicas.Readers.Count() == 0 && o.Pending == nil {
		o.Mu.Unlock()
		e.send(m.Requester, &wire.OwnNack{ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self, Reason: wire.NackUnknownObject})
		return
	}

	// Retry of the request this driver already arbitrates: re-INV with the
	// same o_ts (idempotent); arbiters that already applied re-ACK.
	if o.Pending != nil && o.Pending.ReqID == m.ReqID {
		inv := invFromPending(m.Obj, o.Pending)
		arbiters := o.Pending.Arbiters
		o.Mu.Unlock()
		e.broadcastInv(arbiters, inv)
		e.ackAsArbiter(inv) // driver re-ACKs too
		return
	}

	// An arbitration for a *different* request is pending on this entry.
	// The new replica set of a request must be computed from an applied
	// (validated) state — deriving it from a pending one could strand the
	// pending winner with a stale access level. So the driver refuses to
	// arbitrate (the requester backs off and retries), and if the pending
	// arbitration has lingered (its requester died or gave up before
	// validating), the driver force-completes it via arb-replay — any
	// arbiter has all the information to do so idempotently (§4.1).
	if o.Pending != nil {
		stale := time.Since(o.Pending.Since) > e.cfg.StaleAfter
		pend := *o.Pending
		o.Mu.Unlock()
		e.stNacks.Add(1)
		e.send(m.Requester, &wire.OwnNack{
			ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self,
			Reason: wire.NackLostArbitration,
		})
		if stale {
			e.stReplays.Add(1)
			pend.Epoch = epoch
			go e.arbReplay(m.Obj, pend, epoch, e.agent.View().Live)
		}
		return
	}

	// When the driver itself is the current owner, it enforces the
	// pending-commit rule before arbitrating away its own write access
	// (pending reliable commits or an executing local transaction, §4.1).
	// HasPendingCommit reads the object's atomic PendingCommits counter
	// (bumped under the object lock at local-commit time) when wired to
	// the commit engine, and is a stub seam in tests.
	if o.Level == wire.Owner && m.Requester != e.self &&
		(o.LocalOwner != store.NoLocalOwner || e.HasPendingCommit(m.Obj)) {
		o.YieldLocalUntil = time.Now().Add(transferYield)
		o.Mu.Unlock()
		e.stNacks.Add(1)
		e.send(m.Requester, &wire.OwnNack{
			ReqID: m.ReqID, Obj: m.Obj, Epoch: epoch, From: e.self,
			Reason: wire.NackPendingCommit,
		})
		return
	}

	// Mint a fresh o_ts strictly above the applied version. Concurrent
	// requests through other drivers mint the same version with different
	// node ids; the lexicographic order picks exactly one winner (§4.1).
	ts := wire.OTS{Ver: o.OTS.Ver + 1, Node: e.self}

	// Compute the replica set after the request.
	cur := o.Replicas
	var next wire.ReplicaSet
	switch m.Mode {
	case wire.AcquireOwner:
		next = cur.WithOwner(m.Requester)
	case wire.AcquireReader:
		next = cur.WithReader(m.Requester)
	case wire.DropReader:
		next = cur
		for _, n := range m.Target.Nodes() {
			next = next.WithoutReader(n)
		}
	case wire.CreateObject:
		next = wire.ReplicaSet{Owner: m.Requester, Readers: m.Target.Remove(m.Requester)}
	case wire.DeleteObject:
		next = wire.ReplicaSet{Owner: wire.NoNode}
	}

	// Arbiters: the shard's drivers + the current owner. Sharding requests
	// (§6.2) additionally involve the affected replicas: dropped readers
	// must discard data, created readers must learn their role, deletes
	// reach everyone. If the owner died and the requester needs data, a
	// live reader joins the arbitration as the data source.
	live := e.agent.View().Live
	arbiters := e.dir.DriversFor(m.Obj).Intersect(live)
	prevOwner := cur.Owner
	if prevOwner != wire.NoNode && live.Contains(prevOwner) {
		arbiters = arbiters.Add(prevOwner)
	} else {
		prevOwner = wire.NoNode
	}
	switch m.Mode {
	case wire.DropReader:
		arbiters = arbiters.Union(m.Target.Intersect(live))
	case wire.CreateObject:
		arbiters = arbiters.Union(next.Readers.Intersect(live))
	case wire.DeleteObject:
		arbiters = arbiters.Union(cur.All().Intersect(live))
	default:
		if prevOwner == wire.NoNode && cur.LevelOf(m.Requester) == wire.NonReplica {
			if src, ok := pickLive(cur.Readers, live); ok {
				arbiters = arbiters.Add(src)
				prevOwner = src // acts as the data source
			}
		}
	}

	pend := &store.PendingOwn{
		ReqID: m.ReqID, TS: ts, Requester: m.Requester, Driver: e.self,
		Mode: m.Mode, NewReplicas: next, PrevOwner: prevOwner,
		Arbiters: arbiters, Epoch: epoch, Since: time.Now(),
	}
	o.Pending = pend
	o.OState = store.ODrive
	inv := invFromPending(m.Obj, pend)
	o.Mu.Unlock()

	e.broadcastInv(arbiters, inv)
	e.ackAsArbiter(inv)
}

func pickLive(set wire.Bitmap, live wire.Bitmap) (wire.NodeID, bool) {
	alive := set.Intersect(live).Nodes()
	if len(alive) == 0 {
		return wire.NoNode, false
	}
	return alive[0], true
}

func invFromPending(obj wire.ObjectID, p *store.PendingOwn) *wire.OwnInv {
	return &wire.OwnInv{
		ReqID: p.ReqID, Obj: obj, TS: p.TS, Epoch: p.Epoch,
		Requester: p.Requester, Driver: p.Driver, Mode: p.Mode,
		NewReplicas: p.NewReplicas, PrevOwner: p.PrevOwner,
		Arbiters: p.Arbiters,
	}
}

func (e *Engine) broadcastInv(arbiters wire.Bitmap, inv *wire.OwnInv) {
	for _, n := range arbiters.Nodes() {
		if n == e.self {
			continue
		}
		e.send(n, inv)
	}
}

// ackAsArbiter makes the driver play its own arbiter part: it has applied the
// pending request (state Drive) and ACKs the requester like any arbiter.
func (e *Engine) ackAsArbiter(inv *wire.OwnInv) {
	ack := e.buildAck(inv)
	dst := inv.Requester
	if inv.Recovery {
		dst = inv.Driver
	}
	e.send(dst, ack)
}

// buildAck assembles this node's ACK for the given INV, attaching the data
// when this node is the data source and the requester gains a replica.
func (e *Engine) buildAck(inv *wire.OwnInv) *wire.OwnAck {
	ack := &wire.OwnAck{
		ReqID: inv.ReqID, Obj: inv.Obj, TS: inv.TS, Epoch: inv.Epoch,
		From: e.self, Arbiters: inv.Arbiters, NewReplicas: inv.NewReplicas,
		Mode: inv.Mode,
	}
	needData := (inv.Mode == wire.AcquireOwner || inv.Mode == wire.AcquireReader) &&
		e.self == inv.PrevOwner && e.self != inv.Requester
	if needData {
		if o, ok := e.st.Get(inv.Obj); ok {
			o.Mu.Lock()
			// Failure-free transfers to an existing replica send no data:
			// the pending-commit NACK guard guarantees the pipeline
			// drained, so the requester's replica is current. Recovery
			// replays bypass that guard (the pipeline may never drain
			// towards a dead follower), so the requester's replica can
			// lag the owner's committed state by the in-flight slots —
			// the ex-owner therefore always piggybacks its data, which
			// is final (an initiated reliable commit cannot abort), and
			// the requester's t_version check applies it idempotently.
			if inv.Recovery || o.Replicas.LevelOf(inv.Requester) == wire.NonReplica {
				ack.HasData = true
				ack.TVersion = o.TVersion
				ack.CTS = o.CommitCTS
				// No copy: object payloads are replace-only (see the
				// store.Object.Data contract) and a data-carrying ACK is
				// never self-delivered (the data source is never the
				// requester), so the transport marshals — or, in process,
				// the receiver installs — a slice whose backing array this
				// node will never mutate.
				ack.Data = o.Data
			}
			o.Mu.Unlock()
		}
	}
	return ack
}

// ---------------------------------------------------------------------------
// Arbiter side.
// ---------------------------------------------------------------------------

func (e *Engine) handleInv(m *wire.OwnInv) {
	if m.Epoch != e.agent.Epoch() {
		return // stale epoch: ignored (§4.1)
	}
	o, _ := e.st.GetOrCreate(m.Obj)
	o.Mu.Lock()

	// Idempotent re-delivery or replay: already holding / applied this
	// exact arbitration → just re-ACK.
	if (o.Pending != nil && o.Pending.TS == m.TS) || o.OTS == m.TS {
		o.Mu.Unlock()
		e.ackAsArbiter(m)
		return
	}

	effective := o.OTS
	if o.Pending != nil && effective.Less(o.Pending.TS) {
		effective = o.Pending.TS
	}
	if !effective.Less(m.TS) {
		o.Mu.Unlock()
		// Lost arbitration: ignore silently — the loser's driver NACKs its
		// requester when it learns of the winner. Do NOT NACK from here:
		// one arbiter cannot tell a genuinely losing request from a stale
		// re-delivery (an arb-replay of a superseded arbitration arrives
		// from a different sender, so it can overtake the newer INV), and a
		// NACK carries no timestamp — it would make the requester abandon a
		// WINNING arbitration, which a later stale-replay then completes
		// behind its back while it re-arbitrates: two owners. A driver that
		// mints a sub-current timestamp (stale shard entry after a
		// placement change) costs its requester one attempt timeout; the
		// retry re-resolves through a healthier driver.
		return
	}

	// The current owner refuses to hand the object over while reliable
	// commits involving it are pending (§4.1); pipelines drain first.
	// HasPendingCommit reads the object's atomic PendingCommits counter,
	// bumped under the object lock at local-commit time — there is no
	// window between the local commit and the guard seeing it.
	// Replayed INVs bypass this: the locally committed values are final
	// (an initiated reliable commit cannot abort) and replication of the
	// in-flight slots completes independently.
	if !m.Recovery && e.self == m.PrevOwner && o.Level == wire.Owner &&
		(o.LocalOwner != store.NoLocalOwner || e.HasPendingCommit(m.Obj)) {
		// Transfer fairness: a back-to-back local write stream would keep
		// this guard busy forever, so defer new local write grants long
		// enough for the pipeline to drain and the requester to re-probe.
		o.YieldLocalUntil = time.Now().Add(transferYield)
		o.Mu.Unlock()
		e.stNacks.Add(1)
		e.send(m.Requester, &wire.OwnNack{
			ReqID: m.ReqID, Obj: m.Obj, Epoch: m.Epoch, From: e.self,
			Reason: wire.NackPendingCommit,
		})
		return
	}

	// If this node was driving a different, smaller-ts request, that
	// request lost: NACK its requester (contention resolution, §4.1).
	var loser *store.PendingOwn
	if o.OState == store.ODrive && o.Pending != nil && o.Pending.Driver == e.self && o.Pending.ReqID != m.ReqID {
		loser = o.Pending
	}

	o.Pending = &store.PendingOwn{
		ReqID: m.ReqID, TS: m.TS, Requester: m.Requester, Driver: m.Driver,
		Mode: m.Mode, NewReplicas: m.NewReplicas, PrevOwner: m.PrevOwner,
		Arbiters: m.Arbiters, Epoch: m.Epoch, Since: time.Now(),
	}
	o.OState = store.OInvalid
	// An owner that accepts an INV moving ownership away relinquishes its
	// write rights with the ACK (§4.1) — the requester applies first and
	// may serve writes before our VAL arrives, so keeping Level = Owner
	// until then would present two owners to local readers. Demote to
	// reader now (WithOwner keeps the ex-owner's replica); the VAL installs
	// the final level either way.
	if o.Level == wire.Owner && m.NewReplicas.LevelOf(e.self) != wire.Owner {
		o.Level = wire.Reader
	}

	// Did a VAL overtake this INV? Apply immediately if so.
	hasVal := false
	e.valsAwait.Update(m.Obj, func(awaited wire.OTS, ok bool) (wire.OTS, bool, bool) {
		if ok && awaited == m.TS {
			hasVal = true
			return awaited, false, true // consume the stashed VAL
		}
		return awaited, false, false
	})
	var gts wire.OTS
	var greps wire.ReplicaSet
	granted := false
	if hasVal {
		gts, greps, granted = e.applyLocked(o)
	}
	o.Mu.Unlock()
	if granted {
		e.recGrant(m.Obj, gts, greps)
	}

	if loser != nil {
		e.stNacks.Add(1)
		e.send(loser.Requester, &wire.OwnNack{
			ReqID: loser.ReqID, Obj: m.Obj, Epoch: m.Epoch, From: e.self,
			Reason: wire.NackLostArbitration,
		})
	}
	e.ackAsArbiter(m)
}

// applyLocked applies the pending request to the object (caller holds o.Mu):
// replica set, ownership timestamp, this node's access level, and state
// Valid. Dropped replicas discard their data; deletes are handled by caller.
// It returns the applied grant so the caller can WAL it after releasing the
// object mutex (recGrant; grant records never block the object lock).
func (e *Engine) applyLocked(o *store.Object) (ts wire.OTS, reps wire.ReplicaSet, applied bool) {
	p := o.Pending
	if p == nil {
		return wire.OTS{}, wire.ReplicaSet{}, false
	}
	wasReplica := o.Level != wire.NonReplica
	o.Replicas = p.NewReplicas
	o.OTS = p.TS
	o.OState = store.OValid
	newLevel := p.NewReplicas.LevelOf(e.self)
	if wasReplica && newLevel == wire.NonReplica {
		o.Data = nil // dropped reader discards its replica
		o.SetTLocked(0, store.TValid)
		o.ResetRingLocked() // a dropped replica must never serve ring reads
	}
	o.Level = newLevel
	o.Pending = nil
	return p.TS, p.NewReplicas, true
}

// recGrant records an applied ownership grant in the WAL (best effort:
// grant records are recovery hints — the restarted node re-derives
// authoritative levels from state sync — so a failed append degrades
// nothing but restart locality). Called outside the object mutex.
func (e *Engine) recGrant(obj wire.ObjectID, ts wire.OTS, reps wire.ReplicaSet) {
	if l := e.log; l != nil {
		_ = l.Append(storage.Record{
			Kind: storage.RecGrant, Obj: obj, TS: ts,
			Replicas: reps, Level: reps.LevelOf(e.self),
		})
	}
}

func (e *Engine) handleVal(m *wire.OwnVal) {
	if m.Epoch != e.agent.Epoch() {
		return
	}
	o, _ := e.st.GetOrCreate(m.Obj)
	o.Mu.Lock()
	switch {
	case o.Pending != nil && o.Pending.TS == m.TS:
		mode := o.Pending.Mode
		gts, greps, granted := e.applyLocked(o)
		o.Mu.Unlock()
		if granted {
			e.recGrant(m.Obj, gts, greps)
		}
		if mode == wire.DeleteObject && !e.dir.DrivesShard(e.self, m.Obj) {
			e.st.Delete(m.Obj)
		}
	case o.OTS == m.TS || (o.Pending != nil && m.TS.Less(o.Pending.TS)) || m.TS.Less(o.OTS):
		o.Mu.Unlock() // duplicate or superseded: ignore
	default:
		// VAL overtook its INV (different senders): stash until the INV
		// arrives.
		o.Mu.Unlock()
		e.valsAwait.Update(m.Obj, func(cur wire.OTS, ok bool) (wire.OTS, bool, bool) {
			if !ok || cur.Less(m.TS) {
				return m.TS, true, false
			}
			return cur, false, false
		})
	}
}

// ---------------------------------------------------------------------------
// ACK collection (requester in the fast path, driver during recovery).
// ---------------------------------------------------------------------------

func (e *Engine) handleAck(m *wire.OwnAck) {
	if m.Epoch != e.agent.Epoch() {
		return
	}
	// Recovery ACKs are rare (arb-replays around view changes); the atomic
	// count keeps the failure-free path off the recovery lock entirely.
	if e.recovN.Load() > 0 {
		e.recovMu.Lock()
		if rs, ok := e.recov[m.ReqID]; ok && rs.ts == m.TS {
			e.handleRecoveryAckLocked(rs, m)
			e.recovMu.Unlock()
			return
		}
		e.recovMu.Unlock()
	}
	req, ok := e.pending.Get(m.ReqID)
	if !ok {
		return // late ACK for a finished/abandoned request
	}

	req.mu.Lock()
	if req.applied {
		req.mu.Unlock()
		return
	}
	if req.ts != m.TS {
		if req.ts.Less(m.TS) {
			// The driver re-arbitrated this request with a fresh,
			// larger o_ts (e.g. after an interleaved contender):
			// adopt it and restart ACK collection.
			req.ts = m.TS
			req.acked = 0
			req.hasData = false
			req.data = nil
			req.cts = 0
		} else {
			req.mu.Unlock()
			return // stale ACK from a superseded arbitration
		}
	}
	req.ts = m.TS
	req.arbiters = m.Arbiters
	req.newReplicas = m.NewReplicas
	req.acked = req.acked.Add(m.From)
	if m.HasData {
		req.hasData = true
		req.tversion = m.TVersion
		req.data = m.Data
		req.cts = m.CTS
	}
	if req.acked.Intersect(req.arbiters) != req.arbiters {
		req.mu.Unlock()
		return
	}
	req.applied = true
	ts, arbiters := req.ts, req.arbiters
	mode := req.mode
	hasData, tversion, data := req.hasData, req.tversion, req.data
	cts := req.cts
	newReplicas := req.newReplicas
	req.mu.Unlock()

	// All expected ACKs received: the requester applies the request first
	// (before any arbiter), unblocks the application, then VALs.
	e.applyAsRequester(m.Obj, ts, newReplicas, mode, hasData, tversion, data, cts)
	select {
	case req.done <- outcome{ok: true}:
	default:
	}
	val := &wire.OwnVal{ReqID: m.ReqID, Obj: m.Obj, TS: ts, Epoch: m.Epoch}
	for _, n := range arbiters.Nodes() {
		if n == e.self {
			continue
		}
		e.send(n, val)
	}
}

// applyAsRequester installs the granted level, replica set and (for fresh
// replicas) the object data. The install is monotonic in the ownership
// timestamp: a strictly older ts is dropped. In the failure-free flow the
// requester applies first, so its local o_ts is always below the minted
// one — the guard only bites for a stale recovery RESP, i.e. an arb-replay
// finishing an arbitration its requester abandoned (attempt timeout) and
// re-ran: applying the abandoned grant over the newer state would hand
// ownership metadata back in time and present two owners.
func (e *Engine) applyAsRequester(obj wire.ObjectID, ts wire.OTS, reps wire.ReplicaSet,
	mode wire.ReqMode, hasData bool, tversion uint64, data []byte, cts uint64) {

	if mode == wire.DeleteObject {
		if e.dir.DrivesShard(e.self, obj) {
			if o, ok := e.st.Get(obj); ok {
				o.Mu.Lock()
				if !ts.Less(o.OTS) {
					o.Replicas = reps
					o.OTS = ts
					o.OState = store.OValid
					o.Pending = nil
					o.Level = wire.NonReplica
					o.Data = nil
				}
				o.Mu.Unlock()
			}
		} else {
			e.st.Delete(obj)
		}
		return
	}
	o, _ := e.st.GetOrCreate(obj)
	o.Mu.Lock()
	if ts.Less(o.OTS) {
		o.Mu.Unlock()
		return
	}
	o.Replicas = reps
	o.OTS = ts
	o.OState = store.OValid
	o.Pending = nil
	if hasData && tversion >= o.TVersion {
		o.Data = data
		o.SetTLocked(tversion, store.TValid)
		// A shipped value re-arms this replica's snapshot-read ring: the
		// ex-owner's CommitCTS vouches for the version it shipped.
		o.CommitCTS = cts
		o.PublishRingLocked(cts, tversion, data)
	}
	newLevel := reps.LevelOf(e.self)
	if o.Level != wire.NonReplica && newLevel == wire.NonReplica {
		o.Data = nil
		o.SetTLocked(0, store.TValid)
		o.ResetRingLocked() // a dropped replica must never serve ring reads
	}
	o.Level = newLevel
	o.Mu.Unlock()
	e.clock.Update(cts)
	e.recGrant(obj, ts, reps)
}

func (e *Engine) handleNack(m *wire.OwnNack) {
	req, ok := e.pending.Get(m.ReqID)
	if !ok {
		return
	}
	select {
	case req.done <- outcome{ok: false, reason: m.Reason, from: m.From}:
	default:
	}
}

// ---------------------------------------------------------------------------
// Failure recovery (arb-replay, §4.1).
// ---------------------------------------------------------------------------

// Pause makes the engine NACK new ownership requests (recovery window).
func (e *Engine) Pause() { e.recovering.Store(true) }

// Resume arb-replays every pending arbitration left behind by the previous
// epoch and then re-enables ownership requests. The replay INVs are
// broadcast BEFORE new REQs are accepted, so a directory driver that newly
// gained a shard in this epoch usually learns the outcome of the shard's
// in-flight arbitrations before it can be asked to drive one (the suspect
// gating in directory.Service covers the remaining cross-sender races).
func (e *Engine) Resume() {
	e.ArbReplayAll()
	e.recovering.Store(false)
}

// PruneDead removes dead nodes from all replica sets (directory entries and
// owned objects) after a view change; objects whose owner died become
// ownerless until the next write transaction takes over (§4.1).
func (e *Engine) PruneDead(live wire.Bitmap) {
	e.st.ForEach(func(o *store.Object) bool {
		o.Mu.Lock()
		o.Replicas = o.Replicas.Prune(live)
		if o.Pending != nil {
			o.Pending.Arbiters = o.Pending.Arbiters.Intersect(live)
			o.Pending.NewReplicas = o.Pending.NewReplicas.Prune(live)
			if !live.Contains(o.Pending.PrevOwner) {
				o.Pending.PrevOwner = wire.NoNode
			}
		}
		o.Mu.Unlock()
		return true
	})
}

// ArbReplayAll replays the arbitration phase of every pending ownership
// request on this node. Any arbiter can do this; INVs are idempotent, so
// concurrent replayers are harmless.
func (e *Engine) ArbReplayAll() {
	epoch := e.agent.Epoch()
	live := e.agent.View().Live
	type replay struct {
		obj  wire.ObjectID
		pend store.PendingOwn
	}
	var replays []replay
	e.st.ForEach(func(o *store.Object) bool {
		o.Mu.Lock()
		if o.Pending != nil && (o.OState == store.OInvalid || o.OState == store.ODrive) {
			o.Pending.Epoch = epoch
			o.Pending.Arbiters = o.Pending.Arbiters.Intersect(live)
			replays = append(replays, replay{obj: o.ID, pend: *o.Pending})
		}
		o.Mu.Unlock()
		return true
	})
	for _, r := range replays {
		e.stReplays.Add(1)
		e.arbReplay(r.obj, r.pend, epoch, live)
	}
}

func (e *Engine) arbReplay(obj wire.ObjectID, pend store.PendingOwn, epoch wire.Epoch, live wire.Bitmap) {
	// The replay's arbiter set is the original one (minus the dead) PLUS
	// the object's CURRENT shard drivers: every cross-epoch arbitration can
	// only complete through this path (epoch filters drop the in-flight
	// completion messages), so this is where a driver that newly gained the
	// shard learns the outcome. Without it the new driver's synced entry
	// would go permanently stale for this object and later mint a colliding
	// timestamp — electing an owner without invalidating the current one.
	rs := &recovState{
		reqID:    pend.ReqID,
		obj:      obj,
		ts:       pend.TS,
		arbiters: pend.Arbiters.Intersect(live).Add(e.self).Union(e.dir.DriversFor(obj).Intersect(live)),
		pend:     pend,
	}
	e.recovMu.Lock()
	if _, dup := e.recov[pend.ReqID]; dup {
		e.recovMu.Unlock()
		return
	}
	e.recov[pend.ReqID] = rs
	e.recovN.Add(1)
	e.recovMu.Unlock()

	inv := invFromPending(obj, &pend)
	inv.Epoch = epoch
	inv.Driver = e.self // ACKs flow to the replaying driver
	inv.Recovery = true
	inv.Arbiters = rs.arbiters
	for _, n := range rs.arbiters.Nodes() {
		if n == e.self {
			continue
		}
		e.send(n, inv)
	}
	// Count the replayer's own ACK.
	e.recovMu.Lock()
	rs.acked = rs.acked.Add(e.self)
	e.checkRecoveryCompleteLocked(rs, epoch)
	e.recovMu.Unlock()
}

func (e *Engine) handleRecoveryAckLocked(rs *recovState, m *wire.OwnAck) {
	rs.acked = rs.acked.Add(m.From)
	if m.HasData {
		rs.hasData = true
		rs.tversion = m.TVersion
		rs.data = m.Data
		rs.cts = m.CTS
	}
	e.checkRecoveryCompleteLocked(rs, m.Epoch)
}

// checkRecoveryCompleteLocked finalizes an arb-replay once every live arbiter
// ACKed: a live requester gets a RESP (it must apply first), a dead
// requester's request is finalized by the driver directly via VALs.
func (e *Engine) checkRecoveryCompleteLocked(rs *recovState, epoch wire.Epoch) {
	if rs.finished || rs.acked.Intersect(rs.arbiters) != rs.arbiters {
		return
	}
	rs.finished = true
	delete(e.recov, rs.reqID)
	e.recovN.Add(-1)
	live := e.agent.View().Live
	p := rs.pend
	if live.Contains(p.Requester) && p.Requester != e.self {
		e.send(p.Requester, &wire.OwnResp{
			ReqID: rs.reqID, Obj: rs.obj, TS: rs.ts, Epoch: epoch,
			Driver: e.self, Arbiters: rs.arbiters, NewReplicas: p.NewReplicas,
			Mode: p.Mode, HasData: rs.hasData, TVersion: rs.tversion, Data: rs.data,
			CTS: rs.cts,
		})
		return
	}
	// Requester dead (or is this very node): finalize directly.
	go func() {
		if p.Requester == e.self {
			e.applyAsRequester(rs.obj, rs.ts, p.NewReplicas, p.Mode, rs.hasData, rs.tversion, rs.data, rs.cts)
		}
		val := &wire.OwnVal{ReqID: rs.reqID, Obj: rs.obj, TS: rs.ts, Epoch: epoch}
		for _, n := range rs.arbiters.Nodes() {
			if n == e.self {
				continue
			}
			e.send(n, val)
		}
		// Ensure the local entry is validated too (the requester may have
		// died before applying; this node holds the pending record).
		if o, ok := e.st.Get(rs.obj); ok {
			o.Mu.Lock()
			var gts wire.OTS
			var greps wire.ReplicaSet
			granted := false
			if o.Pending != nil && o.Pending.TS == rs.ts {
				gts, greps, granted = e.applyLocked(o)
			}
			o.Mu.Unlock()
			if granted {
				e.recGrant(rs.obj, gts, greps)
			}
		}
	}()
}

// handleResp lets a live requester finish a recovered request exactly like
// the failure-free path: apply first, then VAL the arbiters.
func (e *Engine) handleResp(m *wire.OwnResp) {
	if m.Epoch != e.agent.Epoch() {
		return
	}
	e.applyAsRequester(m.Obj, m.TS, m.NewReplicas, m.Mode, m.HasData, m.TVersion, m.Data, m.CTS)
	req, ok := e.pending.Get(m.ReqID)
	if ok {
		select {
		case req.done <- outcome{ok: true}:
		default:
		}
	}
	val := &wire.OwnVal{ReqID: m.ReqID, Obj: m.Obj, TS: m.TS, Epoch: m.Epoch}
	for _, n := range m.Arbiters.Nodes() {
		if n == e.self {
			continue
		}
		e.send(n, val)
	}
}
