package ownership

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/membership"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// tnode bundles one node's ownership stack for tests.
type tnode struct {
	id    wire.NodeID
	st    *store.Store
	eng   *Engine
	tr    *transport.MemTransport
	agent *membership.Agent
}

type tcluster struct {
	hub   *transport.Hub
	mgr   *membership.Manager
	nodes []*tnode
	dirs  wire.Bitmap
}

func newTestCluster(t *testing.T, n int) *tcluster {
	t.Helper()
	var members wire.Bitmap
	for i := 0; i < n; i++ {
		members = members.Add(wire.NodeID(i))
	}
	dirs := wire.BitmapOf(0, 1, 2)
	if n < 3 {
		dirs = members
	}
	hub := transport.NewHub()
	mgr := membership.NewManager(membership.Config{Lease: 2 * time.Millisecond}, members)
	c := &tcluster{hub: hub, mgr: mgr, dirs: dirs}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		st := store.New()
		tr := hub.Node(id)
		agent := mgr.Agent(id)
		cfg := DefaultConfig(dirs)
		cfg.AttemptTimeout = 100 * time.Millisecond
		cfg.Deadline = 3 * time.Second
		eng := New(id, st, tr, agent, cfg)
		r := transport.NewRouter()
		eng.Register(r)
		tr.SetHandler(r.Dispatch)
		nd := &tnode{id: id, st: st, eng: eng, tr: tr, agent: agent}
		agent.OnChange(func(old, next wire.View, removed wire.Bitmap) {
			if removed.Count() > 0 {
				eng.Pause()
				eng.PruneDead(next.Live)
				// No commit engine in these tests: report done now.
				agent.ReportRecoveryDone(next.Epoch)
			}
		})
		agent.OnRecovered(func(wire.Epoch) { eng.Resume() })
		c.nodes = append(c.nodes, nd)
		t.Cleanup(func() { eng.Close(); tr.Close() })
	}
	return c
}

func (c *tcluster) kill(t *testing.T, id wire.NodeID) {
	t.Helper()
	c.hub.SetDown(id, true)
	before := c.mgr.View().Epoch
	c.mgr.Fail(id)
	if !c.mgr.WaitEpoch(before+1, 2*time.Second) {
		t.Fatal("view change never happened")
	}
	// Let recovery callbacks run.
	deadline := time.Now().Add(2 * time.Second)
	for c.mgr.RecoveryPending() {
		if time.Now().After(deadline) {
			t.Fatal("recovery barrier never closed")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ownersOf returns the set of nodes that believe they own obj.
func (c *tcluster) ownersOf(obj wire.ObjectID) []wire.NodeID {
	var out []wire.NodeID
	for _, nd := range c.nodes {
		if o, ok := nd.st.Get(obj); ok {
			o.Mu.Lock()
			if o.Level == wire.Owner {
				out = append(out, nd.id)
			}
			o.Mu.Unlock()
		}
	}
	return out
}

// waitLevel polls until node id reaches level for obj.
func (c *tcluster) waitLevel(t *testing.T, id wire.NodeID, obj wire.ObjectID, lvl wire.AccessLevel) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, ok := c.nodes[id].st.Get(obj); ok {
			o.Mu.Lock()
			cur := o.Level
			o.Mu.Unlock()
			if cur == lvl {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never reached %v for obj %d", id, lvl, obj)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func seed(t *testing.T, c *tcluster, owner wire.NodeID, obj wire.ObjectID, readers wire.Bitmap, data []byte) {
	t.Helper()
	if err := c.nodes[owner].eng.Create(obj, readers); err != nil {
		t.Fatalf("create obj %d: %v", obj, err)
	}
	// Install initial data at the owner and readers directly (in the full
	// system the first write transaction replicates it). Readers learn
	// their role at VAL time, so wait for the level to settle first.
	c.waitLevel(t, owner, obj, wire.Owner)
	for _, r := range readers.Nodes() {
		if r != owner {
			c.waitLevel(t, r, obj, wire.Reader)
		}
	}
	for _, nd := range c.nodes {
		o, ok := nd.st.Get(obj)
		if !ok {
			continue
		}
		o.Mu.Lock()
		if o.Level == wire.Owner || o.Level == wire.Reader {
			o.Data = append([]byte(nil), data...)
			o.TVersion = 1
		}
		o.Mu.Unlock()
	}
}

func TestCreateEstablishesOwnerAndReaders(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.nodes[3].eng.Create(100, wire.BitmapOf(1)); err != nil {
		t.Fatal(err)
	}
	c.waitLevel(t, 3, 100, wire.Owner)
	c.waitLevel(t, 1, 100, wire.Reader)
	// Directory nodes agree on the replica set (VALs apply asynchronously).
	for _, d := range c.dirs.Nodes() {
		c.waitDir(t, d, 100, func(reps wire.ReplicaSet) bool {
			return reps.Owner == 3 && reps.Readers.Contains(1)
		})
	}
}

// waitDir polls until dir node d's entry for obj is Valid and satisfies ok.
func (c *tcluster) waitDir(t *testing.T, d wire.NodeID, obj wire.ObjectID, ok func(wire.ReplicaSet) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, found := c.nodes[d].st.Get(obj); found {
			o.Mu.Lock()
			st, reps := o.OState, o.Replicas
			o.Mu.Unlock()
			if st == store.OValid && ok(reps) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dir node %d never converged for obj %d", d, obj)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestAcquireOwnershipTransfersDataToNonReplica(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 7, wire.BitmapOf(1), []byte("payload"))
	if err := c.nodes[3].eng.AcquireOwnership(7); err != nil {
		t.Fatal(err)
	}
	o, ok := c.nodes[3].st.Get(7)
	if !ok {
		t.Fatal("no object at new owner")
	}
	o.Mu.Lock()
	lvl, data := o.Level, string(o.Data)
	o.Mu.Unlock()
	if lvl != wire.Owner {
		t.Fatalf("level = %v", lvl)
	}
	if data != "payload" {
		t.Fatalf("data = %q", data)
	}
	// Previous owner demoted to reader (keeps replica).
	c.waitLevel(t, 0, 7, wire.Reader)
	if owners := c.ownersOf(7); len(owners) != 1 || owners[0] != 3 {
		t.Fatalf("owners = %v", owners)
	}
}

func TestAcquireOwnershipFromReaderNoDataTransfer(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 9, wire.BitmapOf(3), []byte("xyz"))
	c.waitLevel(t, 3, 9, wire.Reader)
	if err := c.nodes[3].eng.AcquireOwnership(9); err != nil {
		t.Fatal(err)
	}
	o, _ := c.nodes[3].st.Get(9)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Level != wire.Owner || string(o.Data) != "xyz" {
		t.Fatalf("reader-to-owner: %v %q", o.Level, o.Data)
	}
}

func TestAcquireReadAddsReplica(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 11, 0, []byte("r"))
	if err := c.nodes[3].eng.AcquireRead(11); err != nil {
		t.Fatal(err)
	}
	o, _ := c.nodes[3].st.Get(11)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Level != wire.Reader || string(o.Data) != "r" {
		t.Fatalf("got %v %q", o.Level, o.Data)
	}
}

func TestFastPathSkipsProtocol(t *testing.T) {
	c := newTestCluster(t, 3)
	seed(t, c, 0, 5, 0, []byte("d"))
	before := c.nodes[0].eng.Stats().Requests
	if err := c.nodes[0].eng.AcquireOwnership(5); err != nil {
		t.Fatal(err)
	}
	if got := c.nodes[0].eng.Stats().Requests; got != before {
		t.Fatalf("owner re-acquire issued %d requests", got-before)
	}
}

func TestUnknownObjectRejected(t *testing.T) {
	c := newTestCluster(t, 3)
	err := c.nodes[2].eng.AcquireOwnership(999)
	if !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestContentionSingleWinnerThenBothSucceed(t *testing.T) {
	c := newTestCluster(t, 5)
	seed(t, c, 0, 42, 0, []byte("hot"))
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, id := range []wire.NodeID{3, 4} {
		wg.Add(1)
		go func(slot int, id wire.NodeID) {
			defer wg.Done()
			errs[slot] = c.nodes[id].eng.AcquireOwnership(42)
		}(i, id)
	}
	wg.Wait()
	// Both must eventually succeed (the loser retries with back-off).
	for i, err := range errs {
		if err != nil {
			t.Fatalf("acquirer %d failed: %v", i, err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let trailing VALs apply
	owners := c.ownersOf(42)
	if len(owners) != 1 {
		t.Fatalf("owners = %v, want exactly one", owners)
	}
	if owners[0] != 3 && owners[0] != 4 {
		t.Fatalf("unexpected final owner %d", owners[0])
	}
	// The winner holds the data.
	o, _ := c.nodes[owners[0]].st.Get(42)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if string(o.Data) != "hot" {
		t.Fatalf("final owner data %q", o.Data)
	}
}

func TestPendingCommitNackThenRetrySucceeds(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 13, 0, []byte("p"))
	var pending atomic.Bool
	pending.Store(true)
	c.nodes[0].eng.HasPendingCommit = func(obj wire.ObjectID) bool {
		return obj == 13 && pending.Load()
	}
	// Drain the "pipeline" shortly after the first NACKs.
	time.AfterFunc(10*time.Millisecond, func() { pending.Store(false) })
	if err := c.nodes[3].eng.AcquireOwnership(13); err != nil {
		t.Fatal(err)
	}
	// The requester applies first; the old owner demotes on the async VAL.
	c.waitLevel(t, 0, 13, wire.Reader)
	if owners := c.ownersOf(13); len(owners) != 1 || owners[0] != 3 {
		t.Fatalf("owners = %v", owners)
	}
	if c.nodes[3].eng.Stats().Nacks == 0 && c.nodes[0].eng.Stats().Nacks == 0 {
		t.Log("note: ownership won before first NACK (timing dependent)")
	}
}

func TestDropReaderDiscardsReplica(t *testing.T) {
	c := newTestCluster(t, 5)
	seed(t, c, 0, 21, wire.BitmapOf(3, 4), []byte("z"))
	c.waitLevel(t, 3, 21, wire.Reader)
	if err := c.nodes[0].eng.DropReader(21, 3); err != nil {
		t.Fatal(err)
	}
	c.waitLevel(t, 3, 21, wire.NonReplica)
	o, _ := c.nodes[3].st.Get(21)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Data != nil {
		t.Fatalf("dropped reader kept data %q", o.Data)
	}
	// Directory no longer lists node 3 (VAL applies asynchronously).
	c.waitDir(t, 1, 21, func(reps wire.ReplicaSet) bool {
		return !reps.Readers.Contains(3)
	})
}

func TestDeleteRemovesEverywhere(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 33, wire.BitmapOf(3), []byte("gone"))
	c.waitLevel(t, 3, 33, wire.Reader)
	if err := c.nodes[0].eng.Delete(33); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		gone := true
		if o, ok := c.nodes[3].st.Get(33); ok {
			o.Mu.Lock()
			if o.Level != wire.NonReplica || o.Data != nil {
				gone = false
			}
			o.Mu.Unlock()
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica not discarded after delete")
		}
		time.Sleep(time.Millisecond)
	}
	// Re-acquiring a deleted object fails as unknown.
	if err := c.nodes[2].eng.AcquireOwnership(33); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("post-delete acquire: %v", err)
	}
}

func TestOwnerDeathNewOwnerTakesOverFromReader(t *testing.T) {
	c := newTestCluster(t, 5)
	seed(t, c, 4, 55, wire.BitmapOf(3), []byte("survivor"))
	c.waitLevel(t, 3, 55, wire.Reader)
	c.kill(t, 4)
	// Directory pruned the dead owner.
	o, _ := c.nodes[0].st.Get(55)
	o.Mu.Lock()
	if o.Replicas.Owner != wire.NoNode {
		t.Fatalf("dead owner still recorded: %v", o.Replicas)
	}
	o.Mu.Unlock()
	// A non-replica node takes over; data is sourced from the reader.
	if err := c.nodes[2].eng.AcquireOwnership(55); err != nil {
		t.Fatal(err)
	}
	no, _ := c.nodes[2].st.Get(55)
	no.Mu.Lock()
	defer no.Mu.Unlock()
	if no.Level != wire.Owner || string(no.Data) != "survivor" {
		t.Fatalf("takeover failed: %v %q", no.Level, no.Data)
	}
}

func TestArbReplayCompletesOrphanedRequest(t *testing.T) {
	c := newTestCluster(t, 5)
	seed(t, c, 0, 77, 0, []byte("orphan"))
	// Manufacture a half-finished arbitration: requester node 4 was granted
	// ownership (INVs applied at all arbiters) but died before sending VALs.
	ts := wire.OTS{Ver: 2, Node: 1}
	newReps := wire.ReplicaSet{Owner: 4, Readers: wire.BitmapOf(0)}
	pend := store.PendingOwn{
		ReqID: uint64(4)<<48 | 1, TS: ts, Requester: 4, Driver: 1,
		Mode: wire.AcquireOwner, NewReplicas: newReps, PrevOwner: 0,
		Arbiters: wire.BitmapOf(0, 1, 2), Epoch: 1,
	}
	for _, id := range []wire.NodeID{0, 1, 2} {
		o, _ := c.nodes[id].st.Get(77)
		o.Mu.Lock()
		p := pend
		o.Pending = &p
		o.OState = store.OInvalid
		o.Mu.Unlock()
	}
	c.kill(t, 4) // triggers Pause → PruneDead → Resume → ArbReplayAll
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok := true
		for _, id := range []wire.NodeID{0, 1, 2} {
			o, _ := c.nodes[id].st.Get(77)
			o.Mu.Lock()
			if o.OState != store.OValid || o.Pending != nil {
				ok = false
			}
			o.Mu.Unlock()
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("arb-replay never validated the arbiters")
		}
		time.Sleep(time.Millisecond)
	}
	// The request applied: replicas pruned of the dead requester show no
	// owner, and node 0 retains its replica as reader.
	o, _ := c.nodes[1].st.Get(77)
	o.Mu.Lock()
	defer o.Mu.Unlock()
	if o.Replicas.Owner == 4 {
		t.Fatalf("dead node still owner: %v", o.Replicas)
	}
	if replays := c.nodes[0].eng.Stats().Replays + c.nodes[1].eng.Stats().Replays +
		c.nodes[2].eng.Stats().Replays; replays == 0 {
		t.Fatal("no arb-replays recorded")
	}
}

func TestRecoveringNacksNewRequests(t *testing.T) {
	c := newTestCluster(t, 4)
	seed(t, c, 0, 88, 0, []byte("x"))
	for _, nd := range c.nodes {
		nd.eng.Pause()
	}
	cfgErr := make(chan error, 1)
	go func() { cfgErr <- c.nodes[3].eng.AcquireOwnership(88) }()
	time.Sleep(10 * time.Millisecond)
	for _, nd := range c.nodes {
		nd.eng.Resume()
	}
	if err := <-cfgErr; err != nil {
		t.Fatalf("acquire after resume failed: %v", err)
	}
}

func TestOwnershipLatencyHook(t *testing.T) {
	c := newTestCluster(t, 4)
	var mu sync.Mutex
	var lats []time.Duration
	c.nodes[3].eng.cfg.OnLatency = func(d time.Duration) {
		mu.Lock()
		lats = append(lats, d)
		mu.Unlock()
	}
	seed(t, c, 0, 91, 0, []byte("lat"))
	if err := c.nodes[3].eng.AcquireOwnership(91); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lats) != 1 || lats[0] <= 0 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestManyObjectsBulkMigration(t *testing.T) {
	c := newTestCluster(t, 4)
	const N = 200
	for i := 0; i < N; i++ {
		seed(t, c, 0, wire.ObjectID(1000+i), 0, []byte{byte(i)})
	}
	// Move everything to node 3 (the Voter Figure 10 pattern).
	for i := 0; i < N; i++ {
		if err := c.nodes[3].eng.AcquireOwnership(wire.ObjectID(1000 + i)); err != nil {
			t.Fatalf("obj %d: %v", i, err)
		}
	}
	for i := 0; i < N; i++ {
		// The old owner demotes on the async VAL; poll briefly.
		deadline := time.Now().Add(2 * time.Second)
		for {
			owners := c.ownersOf(wire.ObjectID(1000 + i))
			if len(owners) == 1 && owners[0] == 3 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("obj %d owners = %v", i, owners)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func TestInvariantSingleOwnerUnderChurn(t *testing.T) {
	c := newTestCluster(t, 5)
	const objs = 20
	for i := 0; i < objs; i++ {
		seed(t, c, 0, wire.ObjectID(i), 0, []byte(fmt.Sprintf("v%d", i)))
	}
	var wg sync.WaitGroup
	for _, id := range []wire.NodeID{1, 2, 3, 4} {
		wg.Add(1)
		go func(id wire.NodeID) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				obj := wire.ObjectID((round + int(id)) % objs)
				_ = c.nodes[id].eng.AcquireOwnership(obj)
			}
		}(id)
	}
	wg.Wait()
	time.Sleep(30 * time.Millisecond) // let VALs quiesce
	for i := 0; i < objs; i++ {
		owners := c.ownersOf(wire.ObjectID(i))
		if len(owners) > 1 {
			t.Fatalf("obj %d has %d owners: %v", i, len(owners), owners)
		}
		// Valid directory entries agree with each other.
		var reps []wire.ReplicaSet
		for _, d := range c.dirs.Nodes() {
			o, ok := c.nodes[d].st.Get(wire.ObjectID(i))
			if !ok {
				continue
			}
			o.Mu.Lock()
			if o.OState == store.OValid {
				reps = append(reps, o.Replicas)
			}
			o.Mu.Unlock()
		}
		for j := 1; j < len(reps); j++ {
			if reps[j] != reps[0] {
				t.Fatalf("obj %d: dir disagreement %v vs %v", i, reps[0], reps[j])
			}
		}
		// The owner recorded by a valid directory entry holds Owner level.
		if len(reps) > 0 && reps[0].Owner != wire.NoNode {
			o, ok := c.nodes[reps[0].Owner].st.Get(wire.ObjectID(i))
			if !ok {
				t.Fatalf("obj %d: directory owner %d has no object", i, reps[0].Owner)
			}
			o.Mu.Lock()
			lvl := o.Level
			o.Mu.Unlock()
			if lvl != wire.Owner {
				t.Fatalf("obj %d: directory owner %d at level %v", i, reps[0].Owner, lvl)
			}
		}
	}
}
