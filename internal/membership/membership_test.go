package membership

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zeus/internal/wire"
)

func TestInitialView(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	v := m.View()
	if v.Epoch != 1 || v.Live != wire.BitmapOf(0, 1, 2) {
		t.Fatalf("initial view: %+v", v)
	}
	a := m.Agent(0)
	if a.Epoch() != 1 || !a.IsLive(2) || a.IsLive(5) {
		t.Fatalf("agent view wrong: %+v", a.View())
	}
	if a.Self() != 0 {
		t.Fatal("agent self wrong")
	}
	if m.Agent(0) != a {
		t.Fatal("Agent must be stable per id")
	}
}

func TestFailWaitsForLease(t *testing.T) {
	lease := 30 * time.Millisecond
	m := NewManager(Config{Lease: lease}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	a := m.Agent(0)
	a.Renew()
	start := time.Now()
	m.Fail(2)
	// View must not change before the lease expires.
	time.Sleep(lease / 3)
	if m.View().Epoch != 1 {
		t.Fatal("view changed before lease expiry")
	}
	if !m.WaitEpoch(2, time.Second) {
		t.Fatal("epoch never advanced")
	}
	if elapsed := time.Since(start); elapsed < lease/2 {
		t.Fatalf("view changed after only %v (lease %v)", elapsed, lease)
	}
	v := m.View()
	if v.Live.Contains(2) || v.Epoch != 2 {
		t.Fatalf("post-failure view: %+v", v)
	}
}

func TestFailIsIdempotent(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	m.Fail(2)
	m.Fail(2)
	if !m.WaitEpoch(2, time.Second) {
		t.Fatal("no view change")
	}
	time.Sleep(5 * time.Millisecond)
	if e := m.View().Epoch; e != 2 {
		t.Fatalf("double-fail bumped epoch twice: %d", e)
	}
	m.Fail(7) // unknown node: no-op
	time.Sleep(5 * time.Millisecond)
	if e := m.View().Epoch; e != 2 {
		t.Fatalf("failing unknown node changed epoch: %d", e)
	}
}

func TestChangeCallbackCarriesRemovedSet(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	a := m.Agent(0)
	type change struct {
		old, next wire.View
		removed   wire.Bitmap
	}
	ch := make(chan change, 4)
	a.OnChange(func(old, next wire.View, removed wire.Bitmap) {
		ch <- change{old, next, removed}
	})
	m.Fail(1)
	select {
	case c := <-ch:
		if c.old.Epoch != 1 || c.next.Epoch != 2 {
			t.Fatalf("epochs: %+v", c)
		}
		if c.removed != wire.BitmapOf(1) {
			t.Fatalf("removed = %v", c.removed)
		}
	case <-time.After(time.Second):
		t.Fatal("no change delivered")
	}
}

func TestDeadAgentNotNotified(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1))
	defer m.Close()
	dead := m.Agent(1)
	var notified atomic.Bool
	dead.OnChange(func(_, _ wire.View, _ wire.Bitmap) { notified.Store(true) })
	m.Fail(1)
	if !m.WaitEpoch(2, time.Second) {
		t.Fatal("no view change")
	}
	time.Sleep(5 * time.Millisecond)
	if notified.Load() {
		t.Fatal("dead node observed its own removal")
	}
}

func TestRecoveryBarrier(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	a0, a1 := m.Agent(0), m.Agent(1)
	var mu sync.Mutex
	recovered := map[wire.NodeID][]wire.Epoch{}
	a0.OnRecovered(func(e wire.Epoch) {
		mu.Lock()
		recovered[0] = append(recovered[0], e)
		mu.Unlock()
	})
	a1.OnRecovered(func(e wire.Epoch) {
		mu.Lock()
		recovered[1] = append(recovered[1], e)
		mu.Unlock()
	})
	m.Fail(2)
	if !m.WaitEpoch(2, time.Second) {
		t.Fatal("no view change")
	}
	if !m.RecoveryPending() {
		t.Fatal("failure must open the recovery barrier")
	}
	a0.ReportRecoveryDone(2)
	time.Sleep(2 * time.Millisecond)
	if !m.RecoveryPending() {
		t.Fatal("barrier closed before all live nodes reported")
	}
	a1.ReportRecoveryDone(2)
	deadline := time.Now().Add(time.Second)
	for m.RecoveryPending() {
		if time.Now().After(deadline) {
			t.Fatal("barrier never closed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recovered[0]) != 1 || recovered[0][0] != 2 {
		t.Fatalf("node0 recovered callbacks: %v", recovered[0])
	}
	if len(recovered[1]) != 1 {
		t.Fatalf("node1 recovered callbacks: %v", recovered[1])
	}
}

func TestRecoveryDoneStaleEpochIgnored(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	a0 := m.Agent(0)
	// Reporting for an epoch with no open barrier is a no-op.
	a0.ReportRecoveryDone(1)
	a0.ReportRecoveryDone(99)
	if m.RecoveryPending() {
		t.Fatal("no barrier should be open")
	}
}

func TestJoinBumpsEpochWithoutBarrier(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1))
	defer m.Close()
	a0 := m.Agent(0)
	var removedSeen atomic.Int32
	a0.OnChange(func(_, _ wire.View, removed wire.Bitmap) {
		removedSeen.Store(int32(removed.Count()))
	})
	m.Join(5)
	v := m.View()
	if v.Epoch != 2 || !v.Live.Contains(5) {
		t.Fatalf("post-join view: %+v", v)
	}
	if m.RecoveryPending() {
		t.Fatal("join must not open a recovery barrier")
	}
	if removedSeen.Load() != 0 {
		t.Fatal("join reported removed nodes")
	}
	m.Join(5) // idempotent
	if m.View().Epoch != 2 {
		t.Fatal("re-join bumped epoch")
	}
}

func TestLeaveOpensBarrierImmediately(t *testing.T) {
	m := NewManager(Config{Lease: time.Hour}, wire.BitmapOf(0, 1, 2))
	defer m.Close()
	m.Leave(2)
	v := m.View()
	if v.Epoch != 2 || v.Live.Contains(2) {
		t.Fatalf("post-leave view: %+v", v)
	}
	if !m.RecoveryPending() {
		t.Fatal("leave must open the recovery barrier")
	}
}

func TestAgentIgnoresStaleViews(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1))
	defer m.Close()
	a := m.Agent(0)
	old := wire.View{Epoch: 0, Live: wire.BitmapOf(0)}
	a.apply(old, old, 0) // stale epoch: ignored
	if a.Epoch() != 1 {
		t.Fatalf("agent applied stale view: %+v", a.View())
	}
}

func TestRenewExtendsLease(t *testing.T) {
	lease := 25 * time.Millisecond
	m := NewManager(Config{Lease: lease}, wire.BitmapOf(0, 1))
	defer m.Close()
	a1 := m.Agent(1)
	// Renew right before failing: expiry counts from the renewal.
	time.Sleep(5 * time.Millisecond)
	a1.Renew()
	start := time.Now()
	m.Fail(1)
	if !m.WaitEpoch(2, time.Second) {
		t.Fatal("no view change")
	}
	if e := time.Since(start); e < lease*8/10 {
		t.Fatalf("lease cut short: %v < %v", e, lease)
	}
}

func TestConcurrentFailuresDistinctEpochs(t *testing.T) {
	m := NewManager(Config{Lease: time.Millisecond}, wire.BitmapOf(0, 1, 2, 3, 4, 5))
	defer m.Close()
	m.Fail(4)
	m.Fail(5)
	if !m.WaitEpoch(3, time.Second) {
		t.Fatalf("epoch = %d, want 3", m.View().Epoch)
	}
	v := m.View()
	if v.Live.Contains(4) || v.Live.Contains(5) || v.Live.Count() != 4 {
		t.Fatalf("final view: %+v", v)
	}
}
