// Package membership implements Zeus' reliable membership (§3.1): a
// logically-centralized, lease-protected view service in the style of
// ZooKeeper-with-leases. Each membership update carries a monotonically
// increasing epoch id (e_id) and is applied across the deployment only after
// the leases of departed nodes have expired, giving all live nodes consistent
// views despite unreliable failure detection.
//
// The Manager plays the role of the external membership service; Agents live
// inside each node. After a view change that removed nodes, the ownership
// protocol pauses until every live node has replayed the pending reliable
// commits of the dead ones and reported done (§5.1); the Manager implements
// that barrier and notifies agents when recovery completes.
package membership

import (
	"sync"
	"time"

	"zeus/internal/wire"
)

// Config controls lease behaviour.
type Config struct {
	// Lease is how long a failed node's lease remains valid; the view
	// change is deferred until it expires.
	Lease time.Duration
}

// DefaultConfig uses a short lease suitable for simulation.
func DefaultConfig() Config { return Config{Lease: 10 * time.Millisecond} }

// ChangeFunc observes a view change. removed is the set of nodes that left
// between the two views (non-empty ⇒ failure recovery is required).
type ChangeFunc func(old, new wire.View, removed wire.Bitmap)

// RecoveredFunc observes completion of the post-failure recovery barrier.
type RecoveredFunc func(epoch wire.Epoch)

// Manager is the membership service for one deployment.
type Manager struct {
	cfg Config

	mu              sync.Mutex
	epoch           wire.Epoch
	live            wire.Bitmap
	failed          map[wire.NodeID]time.Time
	agents          map[wire.NodeID]*Agent
	pendingRecovery map[wire.Epoch]wire.Bitmap // nodes yet to report done
	renewals        map[wire.NodeID]time.Time
}

// NewManager creates a manager with the given initial members, all live, at
// epoch 1.
func NewManager(cfg Config, members wire.Bitmap) *Manager {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultConfig().Lease
	}
	now := time.Now()
	renew := make(map[wire.NodeID]time.Time, members.Count())
	for _, n := range members.Nodes() {
		renew[n] = now
	}
	return &Manager{
		cfg:             cfg,
		epoch:           1,
		live:            members,
		failed:          make(map[wire.NodeID]time.Time),
		agents:          make(map[wire.NodeID]*Agent),
		pendingRecovery: make(map[wire.Epoch]wire.Bitmap),
		renewals:        renew,
	}
}

// View returns the current view.
func (m *Manager) View() wire.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return wire.View{Epoch: m.epoch, Live: m.live}
}

// Agent creates (or returns) the agent embedded in node id. The agent starts
// with the manager's current view.
func (m *Manager) Agent(id wire.NodeID) *Agent {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.agents[id]; ok {
		return a
	}
	a := &Agent{
		self: id, mgr: m,
		view:    wire.View{Epoch: m.epoch, Live: m.live},
		changed: make(chan struct{}),
	}
	m.agents[id] = a
	return a
}

// Renew records a lease renewal from node id. Renewals from failed nodes are
// ignored (their epoch has moved on).
func (m *Manager) Renew(id wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.live.Contains(id) {
		m.renewals[id] = time.Now()
	}
}

// Fail reports that node id crashed. The view change is published after the
// node's lease expires. Returns immediately; use WaitEpoch or agent callbacks
// to observe the change.
func (m *Manager) Fail(id wire.NodeID) {
	m.mu.Lock()
	if !m.live.Contains(id) {
		m.mu.Unlock()
		return
	}
	if _, already := m.failed[id]; already {
		m.mu.Unlock()
		return
	}
	m.failed[id] = time.Now()
	last := m.renewals[id]
	wait := time.Until(last.Add(m.cfg.Lease))
	if wait < 0 {
		wait = 0
	}
	m.mu.Unlock()
	time.AfterFunc(wait, func() { m.completeFailure(id) })
}

func (m *Manager) completeFailure(id wire.NodeID) {
	m.mu.Lock()
	if !m.live.Contains(id) {
		m.mu.Unlock()
		return
	}
	delete(m.failed, id)
	old := wire.View{Epoch: m.epoch, Live: m.live}
	m.epoch++
	m.live = m.live.Remove(id)
	next := wire.View{Epoch: m.epoch, Live: m.live}
	m.pendingRecovery[m.epoch] = m.live
	agents := m.liveAgentsLocked()
	m.mu.Unlock()
	for _, a := range agents {
		a.apply(old, next, wire.BitmapOf(id))
	}
}

// Join adds node id to the deployment (scale-out). No recovery barrier is
// needed since nothing was lost.
func (m *Manager) Join(id wire.NodeID) {
	m.mu.Lock()
	if m.live.Contains(id) {
		m.mu.Unlock()
		return
	}
	old := wire.View{Epoch: m.epoch, Live: m.live}
	m.epoch++
	m.live = m.live.Add(id)
	m.renewals[id] = time.Now()
	next := wire.View{Epoch: m.epoch, Live: m.live}
	agents := m.liveAgentsLocked()
	m.mu.Unlock()
	for _, a := range agents {
		a.apply(old, next, 0)
	}
}

// Leave removes node id gracefully (scale-in). Unlike Fail there is no lease
// wait — the node coordinated its departure — but the recovery barrier still
// runs so its pending reliable commits are replayed by the survivors.
func (m *Manager) Leave(id wire.NodeID) {
	m.mu.Lock()
	if !m.live.Contains(id) {
		m.mu.Unlock()
		return
	}
	old := wire.View{Epoch: m.epoch, Live: m.live}
	m.epoch++
	m.live = m.live.Remove(id)
	next := wire.View{Epoch: m.epoch, Live: m.live}
	m.pendingRecovery[m.epoch] = m.live
	agents := m.liveAgentsLocked()
	m.mu.Unlock()
	for _, a := range agents {
		a.apply(old, next, wire.BitmapOf(id))
	}
}

func (m *Manager) liveAgentsLocked() []*Agent {
	out := make([]*Agent, 0, len(m.agents))
	for id, a := range m.agents {
		if m.live.Contains(id) {
			out = append(out, a)
		}
	}
	return out
}

// recoveryDone records that node from finished replaying pending reliable
// commits for epoch. When all live nodes have reported, agents are notified
// and the ownership protocol may resume (§5.1).
func (m *Manager) recoveryDone(epoch wire.Epoch, from wire.NodeID) {
	m.mu.Lock()
	pending, ok := m.pendingRecovery[epoch]
	if !ok || epoch != m.epoch {
		m.mu.Unlock()
		return
	}
	pending = pending.Remove(from)
	if pending.Count() > 0 {
		m.pendingRecovery[epoch] = pending
		m.mu.Unlock()
		return
	}
	delete(m.pendingRecovery, epoch)
	agents := m.liveAgentsLocked()
	m.mu.Unlock()
	for _, a := range agents {
		a.notifyRecovered(epoch)
	}
}

// WaitEpoch blocks until the manager's epoch reaches at least e or the
// timeout elapses; reports whether the epoch was reached.
func (m *Manager) WaitEpoch(e wire.Epoch, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		cur := m.epoch
		m.mu.Unlock()
		if cur >= e {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// RecoveryPending reports whether the barrier for the current epoch is open.
func (m *Manager) RecoveryPending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.pendingRecovery[m.epoch]
	return ok
}

// Agent is a node's local view of the membership.
type Agent struct {
	self wire.NodeID
	mgr  *Manager

	mu          sync.Mutex
	view        wire.View
	changed     chan struct{} // closed and replaced on every view change
	onChange    []ChangeFunc
	onRecovered []RecoveredFunc
}

// Self returns the node id this agent belongs to.
func (a *Agent) Self() wire.NodeID { return a.self }

// View returns the agent's current view.
func (a *Agent) View() wire.View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view
}

// Epoch returns the agent's current epoch id.
func (a *Agent) Epoch() wire.Epoch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Epoch
}

// IsLive reports whether node n is live in the agent's view.
func (a *Agent) IsLive(n wire.NodeID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Live.Contains(n)
}

// OnChange registers a view-change callback (engines register here).
func (a *Agent) OnChange(fn ChangeFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onChange = append(a.onChange, fn)
}

// OnRecovered registers a recovery-barrier-complete callback.
func (a *Agent) OnRecovered(fn RecoveredFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onRecovered = append(a.onRecovered, fn)
}

// ReportRecoveryDone tells the membership service that this node has no more
// pending reliable commits from dead coordinators for the given epoch.
func (a *Agent) ReportRecoveryDone(epoch wire.Epoch) {
	a.mgr.recoveryDone(epoch, a.self)
}

// Renew renews this node's lease.
func (a *Agent) Renew() { a.mgr.Renew(a.self) }

// ChangeSignal returns a channel that is closed at the next view change;
// callers blocked on a back-off use it as an immediate wake signal to
// re-resolve ("the owner I was waiting on may just have been declared dead").
// Re-acquire a fresh channel after every wake.
func (a *Agent) ChangeSignal() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.changed
}

func (a *Agent) apply(old, next wire.View, removed wire.Bitmap) {
	a.mu.Lock()
	if next.Epoch <= a.view.Epoch {
		a.mu.Unlock()
		return
	}
	a.view = next
	close(a.changed)
	a.changed = make(chan struct{})
	fns := make([]ChangeFunc, len(a.onChange))
	copy(fns, a.onChange)
	a.mu.Unlock()
	for _, fn := range fns {
		fn(old, next, removed)
	}
}

func (a *Agent) notifyRecovered(epoch wire.Epoch) {
	a.mu.Lock()
	fns := make([]RecoveredFunc, len(a.onRecovered))
	copy(fns, a.onRecovered)
	a.mu.Unlock()
	for _, fn := range fns {
		fn(epoch)
	}
}
