// Package membership implements Zeus' reliable membership (§3.1): a
// logically-centralized, lease-protected view service. Each membership
// update carries a monotonically increasing epoch id (e_id) and is applied
// across the deployment only after the leases of departed nodes have
// expired, giving all live nodes consistent views despite unreliable failure
// detection.
//
// Since PR 4 the authority behind this package is no longer an in-process
// struct: Manager is a facade over a client of internal/viewsvc, the
// replicated Vertical-Paxos-lite view service that runs over the wire. The
// public API is unchanged — Agents still live inside each node, register
// ChangeFunc/RecoveredFunc callbacks and report recovery completion — but
// epochs, lease grants and the post-failure recovery barrier (§5.1) are now
// driven by a quorum of view-service replicas, so the membership service
// survives the loss of any minority of its replicas, including the leader.
//
// NewManager self-hosts a three-replica ensemble on a private in-process
// fabric (the right shape for single-process deployments and tests);
// NewManagerOver attaches to an externally hosted ensemble, e.g. one the
// cluster harness runs over the simulated lossy fabric so tests can crash
// view-service replicas.
package membership

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/transport"
	"zeus/internal/viewsvc"
	"zeus/internal/wire"
)

// Config controls lease behaviour.
type Config struct {
	// Lease is how long a failed node's lease remains valid; the view
	// change is deferred until it expires.
	Lease time.Duration
	// DirShards seeds the shard count of the replicated ownership-directory
	// placement (§6.2) when this manager self-hosts its view-service
	// ensemble (NewManager). 0 picks the view service's scaled default.
	// Multi-process deployments must pass the same value everywhere.
	DirShards int
}

// DefaultConfig uses a short lease suitable for simulation.
func DefaultConfig() Config { return Config{Lease: 10 * time.Millisecond} }

// ChangeFunc observes a view change. removed is the set of nodes that left
// between the two views (non-empty ⇒ failure recovery is required).
type ChangeFunc func(old, new wire.View, removed wire.Bitmap)

// RecoveredFunc observes completion of the post-failure recovery barrier.
type RecoveredFunc func(epoch wire.Epoch)

// Manager is the membership service handle for one deployment: a facade
// over a view-service client plus the set of per-node agents it notifies.
type Manager struct {
	cfg Config
	cli *viewsvc.Client

	// Self-hosted ensemble (NewManager only; nil under NewManagerOver).
	ens *viewsvc.Ensemble

	// placement caches the latest committed directory placement (§6.2); it
	// is fanned out to every agent's atomic slot so the ownership hot path
	// resolves object → drivers with one atomic load.
	placement atomic.Pointer[wire.DirPlacement]

	mu     sync.Mutex
	agents map[wire.NodeID]*Agent
}

// NewManager creates a manager with the given initial members, all live, at
// epoch 1, backed by a self-hosted three-replica view service on a private
// in-process fabric.
func NewManager(cfg Config, members wire.Bitmap) *Manager {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultConfig().Lease
	}
	hub := transport.NewHub()
	vcfg := viewsvc.Config{Lease: cfg.Lease, DirShards: cfg.DirShards}
	ids := []wire.NodeID{0, 1, 2} // private fabric: ids are free
	trs := make([]transport.Transport, len(ids))
	for i, id := range ids {
		trs[i] = hub.Node(id)
	}
	ens := viewsvc.StartEnsemble(vcfg, ids, trs, members)
	cli := viewsvc.NewClient(vcfg, hub.Node(3), ids, members)
	m := newManager(cfg, cli)
	m.ens = ens
	return m
}

// NewManagerOver creates a manager over an externally hosted view service
// (the caller owns the ensemble's lifecycle; the manager owns the client's).
func NewManagerOver(cfg Config, cli *viewsvc.Client) *Manager {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultConfig().Lease
	}
	return newManager(cfg, cli)
}

func newManager(cfg Config, cli *viewsvc.Client) *Manager {
	m := &Manager{cfg: cfg, cli: cli, agents: make(map[wire.NodeID]*Agent)}
	if s := cli.State(); !s.Placement.IsZero() {
		p := s.Placement
		m.placement.Store(&p)
	}
	cli.OnState(m.fanoutState)
	cli.OnView(m.fanoutView)
	cli.OnRecovered(m.fanoutRecovered)
	return m
}

// Close stops the manager's view-service client (and the self-hosted
// ensemble, when this manager owns one).
func (m *Manager) Close() {
	m.cli.Close()
	if m.ens != nil {
		m.ens.Close()
	}
}

// View returns the current view.
func (m *Manager) View() wire.View { return m.cli.View() }

// State returns the full replicated view-service state (status tooling and
// diagnostics; View covers the common case).
func (m *Manager) State() wire.VSState { return m.cli.State() }

// Agent creates (or returns) the agent embedded in node id. The agent starts
// with the service's current view and placement.
func (m *Manager) Agent(id wire.NodeID) *Agent {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.agents[id]; ok {
		return a
	}
	a := &Agent{
		self: id, mgr: m,
		view:    m.cli.View(),
		changed: make(chan struct{}),
	}
	if p := m.placement.Load(); p != nil {
		a.placement.Store(p)
	}
	m.agents[id] = a
	return a
}

// ResetAgent discards the cached agent for node id, so the next Agent(id)
// call builds a fresh one. Restart harnesses call it between a node's death
// and its reincarnation: the dead node's agent still carries the old node's
// callbacks, and handing it to the new instance would deliver view changes
// into torn-down engines.
func (m *Manager) ResetAgent(id wire.NodeID) {
	m.mu.Lock()
	delete(m.agents, id)
	m.mu.Unlock()
}

// Placement returns the latest committed directory placement (§6.2), or nil
// when the view service replicates none.
func (m *Manager) Placement() *wire.DirPlacement { return m.placement.Load() }

// fanoutState propagates replicated side-state (the directory placement) to
// every agent. It runs before the view-change callbacks of the same state,
// so engines reacting to a view change always see its placement.
func (m *Manager) fanoutState(s wire.VSState) {
	if s.Placement.IsZero() {
		return
	}
	p := s.Placement
	m.mu.Lock()
	m.placement.Store(&p)
	for _, a := range m.agents {
		a.placement.Store(&p)
	}
	m.mu.Unlock()
}

// Renew records a lease renewal from node id. Renewal state is striped per
// node (an atomic slot plus a throttled multicast), so concurrent renewals
// never serialize on a manager-wide mutex.
func (m *Manager) Renew(id wire.NodeID) { m.cli.Renew(id) }

// Fail reports that node id crashed. The view change is published after the
// node's lease expires. Returns immediately; use WaitEpoch or agent
// callbacks to observe the change. The report is re-proposed in the
// background, so it survives view-service leader failure.
func (m *Manager) Fail(id wire.NodeID) { m.cli.Fail(id) }

// Join adds node id to the deployment (scale-out). No recovery barrier is
// needed since nothing was lost. Blocks until the new view is visible; if
// the view service has no quorum the join times out silently (observable
// via View().Live — kept void for API compatibility).
func (m *Manager) Join(id wire.NodeID) { m.cli.Join(id) }

// JoinAddr is Join carrying the node's advertised endpoint for the
// replicated address book (multi-process deployments).
func (m *Manager) JoinAddr(id wire.NodeID, addr string) { m.cli.JoinAddr(id, addr) }

// Leave removes node id gracefully (scale-in). Unlike Fail there is no lease
// wait — the node coordinated its departure — but the recovery barrier still
// runs so its pending reliable commits are replayed by the survivors.
// Blocks until the new view is visible.
func (m *Manager) Leave(id wire.NodeID) { m.cli.Leave(id) }

// WaitEpoch blocks until the epoch reaches at least e or the timeout
// elapses; reports whether the epoch was reached.
func (m *Manager) WaitEpoch(e wire.Epoch, timeout time.Duration) bool {
	return m.cli.WaitEpoch(e, timeout)
}

// RecoveryPending reports whether a recovery barrier is open.
func (m *Manager) RecoveryPending() bool { return m.cli.RecoveryPending() }

// liveAgents snapshots the agents of nodes live in the given set, in id
// order (deterministic notification order).
func (m *Manager) liveAgents(live wire.Bitmap) []*Agent {
	m.mu.Lock()
	out := make([]*Agent, 0, len(m.agents))
	for id, a := range m.agents {
		if live.Contains(id) {
			out = append(out, a)
		}
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].self < out[j].self })
	return out
}

// fanoutView delivers a committed view change to the agents of surviving
// nodes (agents of removed nodes must not observe their own removal).
func (m *Manager) fanoutView(old, next wire.View, removed wire.Bitmap) {
	for _, a := range m.liveAgents(next.Live) {
		a.apply(old, next, removed)
	}
}

// fanoutRecovered delivers barrier completion to the live agents.
func (m *Manager) fanoutRecovered(epoch wire.Epoch) {
	for _, a := range m.liveAgents(m.cli.View().Live) {
		a.notifyRecovered(epoch)
	}
}

// Agent is a node's local view of the membership.
type Agent struct {
	self wire.NodeID
	mgr  *Manager

	// placement is the node's cached directory placement (§6.2): one atomic
	// load on the ownership request path, updated by the manager's state
	// fanout strictly before the view change it belongs to.
	placement atomic.Pointer[wire.DirPlacement]

	mu          sync.Mutex
	view        wire.View
	changed     chan struct{} // closed and replaced on every view change
	onChange    []ChangeFunc
	onRecovered []RecoveredFunc
}

// Self returns the node id this agent belongs to.
func (a *Agent) Self() wire.NodeID { return a.self }

// View returns the agent's current view.
func (a *Agent) View() wire.View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view
}

// Epoch returns the agent's current epoch id.
func (a *Agent) Epoch() wire.Epoch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Epoch
}

// Placement returns the replicated directory placement (§6.2), or nil when
// the manager's view service replicates none. The returned value and its
// shard slice are immutable.
func (a *Agent) Placement() *wire.DirPlacement { return a.placement.Load() }

// IsLive reports whether node n is live in the agent's view.
func (a *Agent) IsLive(n wire.NodeID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.view.Live.Contains(n)
}

// OnChange registers a view-change callback (engines register here).
func (a *Agent) OnChange(fn ChangeFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onChange = append(a.onChange, fn)
}

// OnRecovered registers a recovery-barrier-complete callback.
func (a *Agent) OnRecovered(fn RecoveredFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onRecovered = append(a.onRecovered, fn)
}

// ReportRecoveryDone tells the membership service that this node has no more
// pending reliable commits from dead coordinators for the given epoch.
func (a *Agent) ReportRecoveryDone(epoch wire.Epoch) {
	a.mgr.cli.ReportRecoveryDone(epoch, a.self)
}

// Renew renews this node's lease.
func (a *Agent) Renew() { a.mgr.Renew(a.self) }

// ChangeSignal returns a channel that is closed at the next view change;
// callers blocked on a back-off use it as an immediate wake signal to
// re-resolve ("the owner I was waiting on may just have been declared dead").
// Re-acquire a fresh channel after every wake.
func (a *Agent) ChangeSignal() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.changed
}

func (a *Agent) apply(old, next wire.View, removed wire.Bitmap) {
	a.mu.Lock()
	if next.Epoch <= a.view.Epoch {
		a.mu.Unlock()
		return
	}
	a.view = next
	close(a.changed)
	a.changed = make(chan struct{})
	fns := make([]ChangeFunc, len(a.onChange))
	copy(fns, a.onChange)
	a.mu.Unlock()
	for _, fn := range fns {
		fn(old, next, removed)
	}
}

func (a *Agent) notifyRecovered(epoch wire.Epoch) {
	a.mu.Lock()
	fns := make([]RecoveredFunc, len(a.onRecovered))
	copy(fns, a.onRecovered)
	a.mu.Unlock()
	for _, fn := range fns {
		fn(epoch)
	}
}
