package loadgen

import (
	"math/rand"

	"zeus/internal/apps/epcgw"
	"zeus/internal/apps/httplb"
	"zeus/internal/apps/sctpsim"
	"zeus/internal/bench"
	"zeus/internal/dbapi"
)

// Seeder installs one object at its home node (the cluster's bulk initial
// sharding; mirrors bench.Seeder).
type Seeder func(obj uint64, home int, data []byte)

// Workload binds a real application workload to the harness: how to seed its
// objects and how a driver pinned to a node issues one request.
type Workload struct {
	// Name keys run summaries and SLO records.
	Name string
	// Seed installs the workload's initial objects.
	Seed func(seed Seeder)
	// MakeOp returns the op a driver bound to the given node executes.
	MakeOp func(node int, db dbapi.DB) Op
}

// EPCGW is the packet-gateway control plane (§8.5, Figure 13): each arrival
// is one signalling operation — the subscriber's parity of service request
// vs release — against the gateway homed at the driver's node.
func EPCGW(nodes int) Workload {
	cfgFor := func(node int) epcgw.Config { return epcgw.DefaultConfig(node, nodes) }
	return Workload{
		Name: "epcgw",
		Seed: func(seed Seeder) {
			for n := 0; n < nodes; n++ {
				epcgw.New(cfgFor(n), nil).SeedObjects(func(obj uint64, home int, data []byte) {
					seed(obj, home, data)
				})
			}
		},
		MakeOp: func(node int, db dbapi.DB) Op {
			cfg := cfgFor(node)
			g := epcgw.New(cfg, db)
			return func(worker, client int, rng *rand.Rand) error {
				return g.Step(worker, client%cfg.Users, client)
			}
		},
	}
}

// HTTPLB is the session-persistence HTTP load balancer (§8.5, Figure 15):
// each arrival is one proxied request — a sticky read-only lookup, with a
// replicated write on assignment miss.
func HTTPLB(nodes int) Workload {
	cfgFor := func(node int) httplb.Config { return httplb.DefaultConfig(node, nodes) }
	return Workload{
		Name: "httplb",
		Seed: func(seed Seeder) {
			for n := 0; n < nodes; n++ {
				httplb.New(cfgFor(n), nil).SeedObjects(func(obj uint64, home int, data []byte) {
					seed(obj, home, data)
				})
			}
		},
		MakeOp: func(node int, db dbapi.DB) Op {
			cfg := cfgFor(node)
			p := httplb.New(cfg, db)
			return func(worker, client int, rng *rand.Rand) error {
				_, err := p.Handle(worker, client%cfg.Sessions, rng)
				return err
			}
		},
	}
}

// SCTP is the replicated SCTP-like transport (§8.5, Figure 14): each arrival
// is one packet event — a DATA transmission, or the SACK that reopens a full
// congestion window — on a per-(node,worker) association, each a write
// transaction over the ~6.8 KB association state.
//
// assocsPerNode must be at least the harness's workers-per-driver times the
// drivers sharing a node, so concurrent workers do not contend on one
// association's state object (they would still be correct, just all
// conflicts).
func SCTP(nodes, assocsPerNode int) Workload {
	if assocsPerNode <= 0 {
		assocsPerNode = 8
	}
	cfg := sctpsim.DefaultConfig()
	assocObj := func(node, a int) uint64 {
		return 9_000_000 + uint64(node*assocsPerNode+a)
	}
	return Workload{
		Name: "sctp",
		Seed: func(seed Seeder) {
			init := sctpsim.InitialState(cfg).Encode(cfg.StateSize)
			for n := 0; n < nodes; n++ {
				for a := 0; a < assocsPerNode; a++ {
					seed(assocObj(n, a), n, init)
				}
			}
		},
		MakeOp: func(node int, db dbapi.DB) Op {
			return func(worker, client int, rng *rand.Rand) error {
				a := sctpsim.New(cfg, db, assocObj(node, worker%assocsPerNode), worker)
				return a.PacketEvent(1200)
			}
		},
	}
}

// Handover is the cellular handover benchmark (§8.1) — the gateway example's
// mobility pattern: service requests, releases and two-transaction 3GPP
// handovers whose remote moves trigger ownership migration.
func Handover(nodes int) Workload {
	h := bench.NewHandovers(bench.DefaultHandoverConfig(nodes))
	return Workload{
		Name: "handover",
		Seed: func(seed Seeder) { h.Seed(bench.Seeder(seed)) },
		MakeOp: func(node int, db dbapi.DB) Op {
			inner := h.MakeOp(node, db)
			return func(worker, client int, rng *rand.Rand) error {
				return inner(worker, rng)
			}
		},
	}
}
