package loadgen

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/obs"
)

// Op executes one simulated client's request. worker is the zeus pipeline
// the driver binds it to, client identifies the simulated client (stable for
// a given schedule slot, drawn from Config.Clients), and rng is the worker's
// private source.
type Op func(worker, client int, rng *rand.Rand) error

// Config shapes one open-loop run.
type Config struct {
	// Name labels the result.
	Name string
	// Rate is the aggregate target arrival rate (requests/second) across
	// all drivers.
	Rate float64
	// Arrival is the arrival process (default ConstantRate).
	Arrival Arrival
	// Duration is the schedule horizon: arrivals land in [0, Duration).
	// The run itself lasts until the last request completes.
	Duration time.Duration
	// Clients is the simulated client population; each schedule slot is
	// assigned a client by hashing its index into this space (default 1e6 —
	// the paper's "millions of users" framing at simulation scale).
	Clients int
	// Drivers partitions the schedule into independent driver groups, each
	// with its own executor pool — the multi-core runner mode. Defaults to
	// max(GOMAXPROCS, 1); experiments typically round it up to a multiple
	// of the node count so every node is driven.
	Drivers int
	// WorkersPerDriver bounds each driver's in-flight requests (default 4).
	// When all workers are busy, further arrivals queue — and their queueing
	// delay is charged to them, because their clocks started at their
	// scheduled offsets.
	WorkersPerDriver int
	// Seed makes schedules and client choices reproducible.
	Seed int64
}

// Result is one run's measurement.
type Result struct {
	Name      string
	Rate      float64
	Arrival   string
	Offered   int    // scheduled arrivals
	Completed uint64 // requests that returned nil
	Errors    uint64 // requests that returned an error (after dbapi retries)
	Elapsed   time.Duration
	Drivers   int
	Workers   int // per driver

	// Latency is the coordinated-omission-safe histogram: every request
	// recorded from its intended send time, errors included (an errored
	// request still occupied its slot).
	Latency obs.HistSnapshot
	// Service is the same population recorded from the *actual* send time —
	// the measurement a closed-loop harness would report. It exists for the
	// omission-safety regression test and the run summary's "how much tail
	// was queueing" decomposition; never gate on it.
	Service obs.HistSnapshot
}

// Throughput returns completed requests per second of elapsed run time.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// startLead is how far in the future the schedule origin is placed, so the
// first arrivals are not already late before the workers have spun up.
const startLead = 2 * time.Millisecond

// Run executes the schedule. makeOp is called once per driver (drivers bound
// to different nodes return ops against different DBs); the returned op runs
// on the driver's workers.
//
// Workers claim schedule slots in order within their driver: a worker takes
// the next slot, sleeps until its intended time if early, executes, and
// records time-since-intended. If the system is saturated or stalled, slots
// are claimed late and the backlog delay lands in the histogram — never
// dropped. The schedule is interleaved round-robin across drivers so each
// driver sees the full run duration at rate/Drivers.
func Run(cfg Config, makeOp func(driver int) Op) Result {
	if cfg.Arrival == nil {
		cfg.Arrival = ConstantRate{}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1_000_000
	}
	if cfg.Drivers <= 0 {
		cfg.Drivers = runtime.GOMAXPROCS(0)
	}
	if cfg.WorkersPerDriver <= 0 {
		cfg.WorkersPerDriver = 4
	}
	sched := cfg.Arrival.Schedule(cfg.Rate, cfg.Duration, cfg.Seed)
	lat := &obs.Histogram{}
	svc := &obs.Histogram{}
	var completed, errors atomic.Uint64

	start := time.Now().Add(startLead)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Drivers; d++ {
		op := makeOp(d)
		// next claims indices into this driver's arithmetic sub-schedule
		// (global slot = k*Drivers + d): claiming is a single atomic, and
		// slots within a driver are still issued in intended-time order.
		next := &atomic.Int64{}
		for w := 0; w < cfg.WorkersPerDriver; w++ {
			wg.Add(1)
			go func(d, w int, op Op, next *atomic.Int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*1_000_003 + int64(w)))
				for {
					slot := int(next.Add(1)-1)*cfg.Drivers + d
					if slot >= len(sched) {
						return
					}
					intended := start.Add(sched[slot])
					if wait := time.Until(intended); wait > 0 {
						time.Sleep(wait)
					}
					sent := time.Now()
					if err := op(w, clientOf(slot, cfg.Clients), rng); err != nil {
						errors.Add(1)
					} else {
						completed.Add(1)
					}
					// Open-loop: charge everything since the scheduled
					// offset, including the time this slot waited for a
					// free worker. Service keeps the closed-loop view for
					// the queueing decomposition.
					lat.RecordSince(intended)
					svc.RecordSince(sent)
				}
			}(d, w, op, next)
		}
	}
	wg.Wait()
	return Result{
		Name:      cfg.Name,
		Rate:      cfg.Rate,
		Arrival:   cfg.Arrival.Name(),
		Offered:   len(sched),
		Completed: completed.Load(),
		Errors:    errors.Load(),
		Elapsed:   time.Since(start),
		Drivers:   cfg.Drivers,
		Workers:   cfg.WorkersPerDriver,
		Latency:   lat.Snapshot(),
		Service:   svc.Snapshot(),
	}
}

// clientOf hashes a schedule slot to a stable simulated-client identity.
func clientOf(slot, clients int) int {
	h := uint64(slot) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(clients))
}
