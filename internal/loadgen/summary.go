package loadgen

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"zeus/internal/obs"
)

// SLO is a latency objective over the omission-safe histogram. Zero fields
// are ungated.
type SLO struct {
	P50, P99, P999 time.Duration
	// MaxErrorRate bounds Errors/Offered; 0 means any error violates.
	MaxErrorRate float64
}

// Check returns the violated objectives, empty when the result meets the SLO.
func (s SLO) Check(r Result) []string {
	var v []string
	gate := func(name string, want time.Duration, q float64) {
		if want <= 0 {
			return
		}
		got := time.Duration(r.Latency.Quantile(q))
		if got > want {
			v = append(v, fmt.Sprintf("%s %v > %v", name, got, want))
		}
	}
	gate("p50", s.P50, 0.50)
	gate("p99", s.P99, 0.99)
	gate("p999", s.P999, 0.999)
	if r.Offered > 0 {
		rate := float64(r.Errors) / float64(r.Offered)
		if rate > s.MaxErrorRate {
			v = append(v, fmt.Sprintf("error rate %.3f > %.3f (%d/%d)", rate, s.MaxErrorRate, r.Errors, r.Offered))
		}
	}
	return v
}

// Health is the obs-registry cross-check attached to every run summary: the
// same zero-incident assertion the multiproc smoke makes by scraping
// /metrics, made in-process, plus the reliability errata (retransmits, NACK
// reasons) that turn an SLO miss into a diagnosis.
type Health struct {
	Incidents   uint64
	IncidentLog []obs.Incident
	Retransmits uint64
	// Nacks holds every non-zero own_nack_<reason>_total across the
	// collected registries.
	Nacks map[string]uint64
}

// Healthy reports whether the run was incident-free.
func (h Health) Healthy() bool { return h.Incidents == 0 }

// CollectHealth folds per-node (and cluster-level) registries into one
// health report; nil registries are skipped.
func CollectHealth(regs ...*obs.Registry) Health {
	h := Health{Nacks: make(map[string]uint64)}
	for _, r := range regs {
		if r == nil {
			continue
		}
		h.Incidents += r.Incidents.Total()
		h.IncidentLog = append(h.IncidentLog, r.Incidents.Recent()...)
		for name, v := range r.Counters() {
			switch {
			case name == "tr_retransmits_total":
				h.Retransmits += v
			case v > 0 && strings.HasPrefix(name, "own_nack_") && strings.HasSuffix(name, "_total"):
				h.Nacks[name] += v
			}
		}
	}
	return h
}

// WriteText renders the health report; failed runs print the incident list
// so the diagnosis travels with the SLO miss.
func (h Health) WriteText(w io.Writer) {
	fmt.Fprintf(w, "  health: incidents=%d retransmits=%d", h.Incidents, h.Retransmits)
	if len(h.Nacks) > 0 {
		names := make([]string, 0, len(h.Nacks))
		for n := range h.Nacks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, h.Nacks[n])
		}
	}
	fmt.Fprintln(w)
	for _, inc := range h.IncidentLog {
		fmt.Fprintf(w, "  INCIDENT %s [%s] %s\n", inc.When.Format(time.RFC3339), inc.Kind, inc.Detail)
	}
}

// phaseHists are the per-phase commit histograms PR 9's tracer records
// (begin → inv → ack → val → applied): cmt_ack_ns is begin→quorum-ack,
// cmt_applied_ns is begin→locally-applied. A p999 excursion in the harness
// histogram decomposes against these — a fat cmt_ack_ns tail means the
// pipeline (replication round), a thin one means queueing above the engine.
var phaseHists = []string{"cmt_ack_ns", "cmt_applied_ns"}

// Phases merges each commit-phase histogram across the given registries.
func Phases(regs ...*obs.Registry) map[string]obs.HistSnapshot {
	out := make(map[string]obs.HistSnapshot, len(phaseHists))
	for _, name := range phaseHists {
		var merged obs.HistSnapshot
		for _, r := range regs {
			if r == nil {
				continue
			}
			if s, ok := r.HistogramSnapshot(name); ok {
				merged.Merge(&s)
			}
		}
		out[name] = merged
	}
	return out
}

// SlowTraces returns the slowest sampled transaction traces across the
// registries, slowest first — the per-request view behind a phase histogram
// excursion.
func SlowTraces(limit int, regs ...*obs.Registry) []obs.TraceRecord {
	var all []obs.TraceRecord
	for _, r := range regs {
		if r == nil {
			continue
		}
		all = append(all, r.Traces.Slowest()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if len(all) > limit {
		all = all[:limit]
	}
	return all
}
