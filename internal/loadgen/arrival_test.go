package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestConstantRateSchedule(t *testing.T) {
	sched := ConstantRate{}.Schedule(1000, time.Second, 1)
	if len(sched) != 1000 {
		t.Fatalf("want 1000 arrivals at 1000/s over 1s, got %d", len(sched))
	}
	interval := time.Millisecond
	for i, d := range sched {
		want := time.Duration(i) * interval
		if diff := d - want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("arrival %d: got offset %v, want %v", i, d, want)
		}
	}
	if last := sched[len(sched)-1]; last >= time.Second {
		t.Fatalf("last arrival %v outside [0, duration)", last)
	}
}

func TestPoissonInterArrival(t *testing.T) {
	const rate = 2000.0
	const duration = 5 * time.Second
	sched := Poisson{}.Schedule(rate, duration, 7)

	// Count: Poisson(rate·duration) has mean 10000, sd 100; 5 sigma is 5%.
	n := len(sched)
	if n < 9500 || n > 10500 {
		t.Fatalf("arrival count %d outside 5%% of rate·duration=10000", n)
	}
	// Monotone non-decreasing within the horizon.
	prev := time.Duration(-1)
	for i, d := range sched {
		if d < prev {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, d, prev)
		}
		if d < 0 || d >= duration {
			t.Fatalf("arrival %d offset %v outside [0, duration)", i, d)
		}
		prev = d
	}
	// Mean inter-arrival ≈ 1/rate = 500µs.
	var sum float64
	for i := 1; i < n; i++ {
		sum += float64(sched[i] - sched[i-1])
	}
	mean := sum / float64(n-1)
	want := float64(time.Second) / rate
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean inter-arrival %v, want within 5%% of %v",
			time.Duration(mean), time.Duration(want))
	}
	// Exponential gaps have sd = mean; a constant process would have sd 0.
	// Check the coefficient of variation is near 1 so this is not secretly
	// a jittered-constant schedule.
	var sq float64
	for i := 1; i < n; i++ {
		gap := float64(sched[i] - sched[i-1])
		sq += (gap - mean) * (gap - mean)
	}
	cv := math.Sqrt(sq/float64(n-2)) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("inter-arrival coefficient of variation %.3f, want ≈1 (exponential)", cv)
	}
	// Same seed, same schedule.
	again := Poisson{}.Schedule(rate, duration, 7)
	if len(again) != n || again[n/2] != sched[n/2] {
		t.Fatalf("Poisson schedule not reproducible for a fixed seed")
	}
}

func TestArrivalByName(t *testing.T) {
	if a := ArrivalByName("const"); a == nil || a.Name() != "const" {
		t.Fatalf("const did not round-trip: %#v", a)
	}
	if a := ArrivalByName("poisson"); a == nil || a.Name() != "poisson" {
		t.Fatalf("poisson did not round-trip: %#v", a)
	}
	if a := ArrivalByName("uniform"); a != nil {
		t.Fatalf("unknown name resolved to %#v", a)
	}
}

// TestScheduleDrift bounds how late the harness itself issues requests: with
// a no-op workload the only latency is scheduler wakeup jitter plus slot
// claiming, so the omission-safe p99 is an upper bound on harness-induced
// drift. The bound is deliberately loose for loaded single-core CI hosts.
func TestScheduleDrift(t *testing.T) {
	res := Run(Config{
		Name:     "noop",
		Rate:     500,
		Duration: 400 * time.Millisecond,
		Drivers:  2,
	}, func(driver int) Op {
		return func(worker, client int, rng *rand.Rand) error { return nil }
	})
	if res.Offered != 200 {
		t.Fatalf("offered %d, want 200", res.Offered)
	}
	if res.Completed != uint64(res.Offered) || res.Errors != 0 {
		t.Fatalf("completed=%d errors=%d, want all %d slots completed",
			res.Completed, res.Errors, res.Offered)
	}
	if p99 := time.Duration(res.Latency.Quantile(0.99)); p99 > 50*time.Millisecond {
		t.Fatalf("no-op schedule drift p99=%v, want <50ms", p99)
	}
}

// TestClientStability pins the slot→client hash: SLO records keyed by the
// same seed must replay against the same client identities.
func TestClientStability(t *testing.T) {
	a, b := clientOf(12345, 1_000_000), clientOf(12345, 1_000_000)
	if a != b {
		t.Fatalf("clientOf not stable: %d vs %d", a, b)
	}
	if c := clientOf(12345, 10); c < 0 || c >= 10 {
		t.Fatalf("clientOf out of range: %d", c)
	}
}
