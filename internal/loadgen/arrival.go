// Package loadgen is the open-loop load harness: simulated clients issue
// transactions on a fixed arrival schedule — constant-rate or Poisson —
// independent of completion, and latency is recorded from each request's
// *intended* send time into internal/obs log-linear histograms.
//
// The distinction matters for tails. A closed-loop generator issues the next
// request only after the previous one completes, so an engine stall stops
// the generator too: the stall is charged to one request and the thousands
// it delayed are silently never issued (coordinated omission). Here the
// schedule is fixed before the run starts; when the system falls behind,
// every delayed request's latency includes the time it spent waiting for its
// turn, because the clock for request i starts at its scheduled offset, not
// at the moment a worker got around to sending it. A 500 ms stall at 2000
// req/s therefore surfaces as ~1000 samples spread over 0–500 ms instead of
// one 500 ms outlier (see TestOmissionSafety).
package loadgen

import (
	"math/rand"
	"time"
)

// Arrival generates the intended-send schedule for one run: the offsets from
// run start, in nanoseconds, at which each request is due. Schedules are
// precomputed so saturation cannot push arrivals later — the whole point of
// the open loop.
type Arrival interface {
	Name() string
	// Schedule returns every arrival in [0, duration) at the target
	// aggregate rate (requests/second), sorted ascending. seed makes
	// stochastic processes reproducible.
	Schedule(rate float64, duration time.Duration, seed int64) []time.Duration
}

// ConstantRate spaces arrivals exactly 1/rate apart: the deterministic
// schedule used for drift bounds and regression gates.
type ConstantRate struct{}

// Name identifies the process in run summaries and SLO records.
func (ConstantRate) Name() string { return "const" }

// Schedule returns ⌊rate·duration⌋ evenly spaced offsets.
func (ConstantRate) Schedule(rate float64, duration time.Duration, seed int64) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	n := int(rate * duration.Seconds())
	interval := float64(time.Second) / rate
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(float64(i) * interval)
	}
	return out
}

// Poisson draws i.i.d. exponential inter-arrivals (a homogeneous Poisson
// process): the memoryless arrivals of a large independent client
// population, which exercise burst behaviour a constant schedule cannot.
type Poisson struct{}

// Name identifies the process in run summaries and SLO records.
func (Poisson) Name() string { return "poisson" }

// Schedule accumulates Exp(rate) gaps until duration is exhausted.
func (Poisson) Schedule(rate float64, duration time.Duration, seed int64) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	mean := float64(time.Second) / rate
	out := make([]time.Duration, 0, int(rate*duration.Seconds())+16)
	t := 0.0
	for {
		t += rng.ExpFloat64() * mean
		d := time.Duration(t)
		if d >= duration {
			return out
		}
		out = append(out, d)
	}
}

// ArrivalByName resolves a process name from a summary or SLO record key
// back to its generator (const and poisson; unknown names return nil).
func ArrivalByName(name string) Arrival {
	switch name {
	case "const":
		return ConstantRate{}
	case "poisson":
		return Poisson{}
	}
	return nil
}
