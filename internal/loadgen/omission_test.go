package loadgen

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestOmissionSafety is the coordinated-omission regression test: a 500ms
// stall is injected mid-run into an otherwise-instant workload running at
// 2000 req/s on a single worker. Every request scheduled during the stall
// queues behind it, so the open-loop histogram (clock starts at the intended
// send time) must show the backlog — roughly a thousand samples spread over
// 0–500ms, dragging p99 toward the stall length. The closed-loop view of the
// exact same run (clock starts when the worker actually sent) charges the
// stall to one sample and reports a healthy tail: the lie this harness
// exists to prevent. If a refactor ever breaks intended-time charging, the
// open-loop percentiles collapse to the closed-loop ones and this fails.
func TestOmissionSafety(t *testing.T) {
	const rate = 2000.0
	const duration = time.Second
	const stall = 500 * time.Millisecond

	var issued atomic.Int64
	res := Run(Config{
		Name:             "stall",
		Rate:             rate,
		Duration:         duration,
		Drivers:          1,
		WorkersPerDriver: 1,
		Seed:             1,
	}, func(driver int) Op {
		return func(worker, client int, rng *rand.Rand) error {
			// One stall a quarter of the way in; every other request is free.
			if issued.Add(1) == int64(rate/4) {
				time.Sleep(stall)
			}
			return nil
		}
	})

	if res.Completed != uint64(res.Offered) {
		t.Fatalf("completed=%d offered=%d: open loop must issue every slot, late or not",
			res.Completed, res.Offered)
	}

	openP99 := time.Duration(res.Latency.Quantile(0.99))
	openP999 := time.Duration(res.Latency.Quantile(0.999))
	closedP99 := time.Duration(res.Service.Quantile(0.99))
	closedP999 := time.Duration(res.Service.Quantile(0.999))
	t.Logf("open-loop   p99=%v p999=%v", openP99, openP999)
	t.Logf("closed-loop p99=%v p999=%v", closedP99, closedP999)

	// ~1000 of ~2000 samples carry queueing delay up to 500ms, so even p99
	// must sit deep inside the stall, not at no-op scale.
	if openP99 < 100*time.Millisecond {
		t.Fatalf("open-loop p99=%v does not reflect the injected %v stall", openP99, stall)
	}
	if openP999 < openP99 {
		t.Fatalf("open-loop p999=%v below p99=%v", openP999, openP99)
	}
	// The closed-loop recorder sees one 500ms sample out of ~2000 — p99
	// stays at no-op scale, which is exactly the coordinated omission.
	if closedP99 > openP99/4 {
		t.Fatalf("closed-loop p99=%v too close to open-loop p99=%v — stall injection broken?",
			closedP99, openP99)
	}
	if closedP999 >= openP999 {
		t.Fatalf("closed-loop p999=%v ≥ open-loop p999=%v — intended-time charging lost",
			closedP999, openP999)
	}
}

// TestBacklogCharging checks the schedule-slot accounting directly: with one
// worker and an op that takes 2ms at a 1ms arrival interval, the system is
// 2× oversubscribed and the queue grows linearly, so late samples must grow
// toward (duration − service time) rather than clustering at the 2ms service
// time a closed-loop generator would report.
func TestBacklogCharging(t *testing.T) {
	const rate = 1000.0
	const duration = 300 * time.Millisecond
	res := Run(Config{
		Name:             "oversub",
		Rate:             rate,
		Duration:         duration,
		Drivers:          1,
		WorkersPerDriver: 1,
		Seed:             1,
	}, func(driver int) Op {
		return func(worker, client int, rng *rand.Rand) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		}
	})
	openMax := time.Duration(res.Latency.Max())
	closedP99 := time.Duration(res.Service.Quantile(0.99))
	// The last slot was scheduled at ~300ms but drains at ~2ms/op behind
	// ~300 predecessors → its open-loop latency is hundreds of ms.
	if openMax < 100*time.Millisecond {
		t.Fatalf("open-loop max=%v under 2× oversubscription, want the queue visible (≥100ms)", openMax)
	}
	if closedP99 > 50*time.Millisecond {
		t.Fatalf("closed-loop p99=%v, want service-time scale (<50ms)", closedP99)
	}
}
