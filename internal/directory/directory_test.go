package directory

import (
	"testing"
	"time"

	"zeus/internal/membership"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// harness wires N directory services over a hub, sharing one self-hosted
// membership manager (which replicates the placement through its private
// view-service ensemble).
type harness struct {
	mgr  *membership.Manager
	hub  *transport.Hub
	svcs []*Service
	sts  []*store.Store
}

func newHarness(t *testing.T, nodes, dirShards int) *harness {
	t.Helper()
	var members wire.Bitmap
	for i := 0; i < nodes; i++ {
		members = members.Add(wire.NodeID(i))
	}
	h := &harness{
		mgr: membership.NewManager(membership.Config{Lease: 2 * time.Millisecond, DirShards: dirShards}, members),
		hub: transport.NewHub(),
	}
	t.Cleanup(func() { h.mgr.Close() })
	for i := 0; i < nodes; i++ {
		id := wire.NodeID(i)
		st := store.New()
		tr := h.hub.Node(id)
		svc := NewService(id, st, tr, h.mgr.Agent(id), Options{Shards: dirShards})
		r := transport.NewRouter()
		svc.Register(r)
		tr.SetHandler(r.Dispatch)
		h.svcs = append(h.svcs, svc)
		h.sts = append(h.sts, st)
	}
	return h
}

func TestStaticShim(t *testing.T) {
	s := NewStatic(wire.BitmapOf(0, 1, 2))
	if s.Shards() != 1 || s.ShardOf(99) != 0 {
		t.Fatal("static shim must be the degenerate 1-shard directory")
	}
	if s.DriversFor(7) != wire.BitmapOf(0, 1, 2) {
		t.Fatalf("drivers = %v", s.DriversFor(7))
	}
	if !s.DrivesShard(1, 42) || s.DrivesShard(3, 42) {
		t.Fatal("DrivesShard must mirror the fixed set")
	}
	if !s.Ready(5) {
		t.Fatal("static directory is always ready")
	}
}

func TestServiceResolutionAgreesAcrossNodes(t *testing.T) {
	h := newHarness(t, 4, 8)
	for obj := wire.ObjectID(0); obj < 64; obj++ {
		want := h.svcs[0].DriversFor(obj)
		if want.Count() != 3 {
			t.Fatalf("obj %d: %d drivers, want 3", obj, want.Count())
		}
		for i, svc := range h.svcs {
			if got := svc.DriversFor(obj); got != want {
				t.Fatalf("obj %d: node %d resolves %v, node 0 resolves %v", obj, i, got, want)
			}
			if svc.DrivesShard(wire.NodeID(i), obj) != want.Contains(wire.NodeID(i)) {
				t.Fatalf("obj %d: node %d DrivesShard disagrees with DriversFor", obj, i)
			}
		}
	}
	if h.svcs[0].Shards() != 8 {
		t.Fatalf("replicated shard count = %d, want 8", h.svcs[0].Shards())
	}
}

// TestServiceSyncsNewDriverShards kills a directory driver and checks that
// the replacement driver pulls the shard's metadata from the survivors.
func TestServiceSyncsNewDriverShards(t *testing.T) {
	h := newHarness(t, 4, 8)

	// Pick an object, its driver set {a,b,c} and the spare node d.
	obj := wire.ObjectID(1)
	drivers := h.svcs[0].DriversFor(obj)
	var spare wire.NodeID = wire.NoNode
	for i := 0; i < 4; i++ {
		if !drivers.Contains(wire.NodeID(i)) {
			spare = wire.NodeID(i)
		}
	}
	if spare == wire.NoNode {
		t.Fatal("no spare node; degree must be 3 of 4")
	}

	// Seed the directory entry at the current drivers only.
	reps := wire.ReplicaSet{Owner: spare, Readers: wire.BitmapOf(spare).Remove(spare)}
	for _, d := range drivers.Nodes() {
		o, _ := h.sts[d].GetOrCreate(obj)
		o.Mu.Lock()
		o.OTS = wire.OTS{Ver: 5, Node: spare}
		o.Replicas = reps
		o.Mu.Unlock()
	}

	// Kill one driver; the spare must rendezvous into the shard (3 live
	// nodes remain, degree 3 ⇒ every shard is driven by all survivors).
	victim := drivers.Nodes()[0]
	epoch := h.mgr.View().Epoch
	h.mgr.Fail(victim)
	if !h.mgr.WaitEpoch(epoch+1, 5*time.Second) {
		t.Fatal("view change timed out")
	}

	newDrivers := h.svcs[spare].DriversFor(obj)
	if newDrivers.Contains(victim) || !newDrivers.Contains(spare) {
		t.Fatalf("placement after kill: %v (victim %d, spare %d)", newDrivers, victim, spare)
	}

	// The spare pulls the entry from the surviving drivers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, ok := h.sts[spare].Get(obj); ok {
			o.Mu.Lock()
			ts, rs := o.OTS, o.Replicas
			o.Mu.Unlock()
			if ts == (wire.OTS{Ver: 5, Node: spare}) && rs.Owner == spare {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replacement driver never synced the shard entry")
		}
		time.Sleep(time.Millisecond)
	}
	if !h.svcs[spare].Ready(obj) {
		t.Fatal("shard still not ready after sync")
	}
	if st := h.svcs[spare].Stats(); st.Pulls == 0 || st.Synced == 0 {
		t.Fatalf("sync stats: %+v", st)
	}
}

// TestSuspectGatingUntilArbitrationOutcome pins the split-brain guard: a
// snapshot entry flagged with an in-flight arbitration makes the new driver
// refuse to drive that object (Ready=false) until the local entry shows the
// outcome — the arbitration's replay arriving (Pending set) or its
// completion (o_ts advancing past the snapshot's).
func TestSuspectGatingUntilArbitrationOutcome(t *testing.T) {
	h := newHarness(t, 4, 4)
	svc, st := h.svcs[0], h.sts[0]
	obj := wire.ObjectID(21)
	sh := uint32(svc.ShardOf(obj))

	svc.Handle(1, &wire.DirState{Shard: sh, From: 1, Entries: []wire.DirEntry{
		{Obj: obj, TS: wire.OTS{Ver: 9, Node: 3}, Replicas: wire.ReplicaSet{Owner: 3}, Pending: true},
	}})
	if svc.Ready(obj) {
		t.Fatal("flagged object must not be driven before the outcome is visible")
	}
	if st2 := svc.Stats(); st2.Suspect != 1 {
		t.Fatalf("suspect count = %d", st2.Suspect)
	}
	// Unrelated objects in the same shard stay drivable.
	other := obj
	for cand := wire.ObjectID(1); cand < 200; cand++ {
		if uint32(svc.ShardOf(cand)) == sh && cand != obj {
			other = cand
			break
		}
	}
	if other != obj && !svc.Ready(other) {
		t.Fatal("suspicion must be per object, not per shard")
	}

	// The arbitration's completion becomes visible: o_ts advances.
	o, _ := st.GetOrCreate(obj)
	o.Mu.Lock()
	o.OTS = wire.OTS{Ver: 10, Node: 2}
	o.Mu.Unlock()
	if !svc.Ready(obj) {
		t.Fatal("suspicion must lift once the entry advanced past the snapshot")
	}
	if st2 := svc.Stats(); st2.Suspect != 0 {
		t.Fatalf("suspect count after clear = %d", st2.Suspect)
	}

	// A pending arbitration arriving locally also lifts the gate (the
	// ownership engine then handles the object natively).
	obj2 := wire.ObjectID(22)
	svc.Handle(1, &wire.DirState{Shard: uint32(svc.ShardOf(obj2)), From: 1, Entries: []wire.DirEntry{
		{Obj: obj2, TS: wire.OTS{Ver: 5, Node: 1}, Replicas: wire.ReplicaSet{Owner: 1}, Pending: true},
	}})
	if svc.Ready(obj2) {
		t.Fatal("second flagged object must start suspect")
	}
	o2, _ := st.GetOrCreate(obj2)
	o2.Mu.Lock()
	o2.Pending = &store.PendingOwn{ReqID: 7, TS: wire.OTS{Ver: 6, Node: 0}}
	o2.Mu.Unlock()
	if !svc.Ready(obj2) {
		t.Fatal("suspicion must lift once the pending arbitration reached us")
	}
}

// TestServiceSnapshotNeverRegresses pins the install guard: an entry never
// overwrites a newer timestamp or a pending arbitration.
func TestServiceSnapshotNeverRegresses(t *testing.T) {
	h := newHarness(t, 4, 4)
	svc, st := h.svcs[0], h.sts[0]

	o, _ := st.GetOrCreate(9)
	o.Mu.Lock()
	o.OTS = wire.OTS{Ver: 10, Node: 2}
	o.Replicas = wire.ReplicaSet{Owner: 2}
	o.Mu.Unlock()

	svc.Handle(1, &wire.DirState{Shard: uint32(svc.ShardOf(9)), From: 1, Entries: []wire.DirEntry{
		{Obj: 9, TS: wire.OTS{Ver: 4, Node: 1}, Replicas: wire.ReplicaSet{Owner: 1}},
	}})
	o.Mu.Lock()
	owner := o.Replicas.Owner
	o.Mu.Unlock()
	if owner != 2 {
		t.Fatal("stale snapshot entry overwrote a newer directory entry")
	}

	o.Mu.Lock()
	o.Pending = &store.PendingOwn{ReqID: 1, TS: wire.OTS{Ver: 11, Node: 0}}
	o.Mu.Unlock()
	svc.Handle(1, &wire.DirState{Shard: uint32(svc.ShardOf(9)), From: 1, Entries: []wire.DirEntry{
		{Obj: 9, TS: wire.OTS{Ver: 20, Node: 1}, Replicas: wire.ReplicaSet{Owner: 1}},
	}})
	o.Mu.Lock()
	owner = o.Replicas.Owner
	o.Mu.Unlock()
	if owner != 2 {
		t.Fatal("snapshot entry overwrote a pending arbitration")
	}
}
