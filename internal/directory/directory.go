// Package directory is the sharded ownership directory (§6.2): the
// control-plane subsystem that decides, per object, which nodes arbitrate
// ownership requests.
//
// The paper's evaluation replicates the directory across three fixed nodes;
// at scale that turns the directory into the coordination bottleneck — every
// ownership REQ for every object funnels through the same three arbiters.
// This package hash-partitions the directory into S shards. Each shard is
// driven by a small driver set (three nodes by default) chosen by rendezvous
// hashing from the live view, and the shard→drivers placement map is part of
// the replicated view-service state (wire.VSState.Placement): placement is
// quorum-committed, versioned by the membership epoch, and survives view
// changes and view-leader takeover exactly like membership itself.
//
// Two implementations of the Directory interface exist:
//
//   - Static: the degenerate 1-shard compat shim — a fixed driver set, the
//     pre-sharding behaviour (ownership.Config.DirNodes).
//   - Service: the full subsystem. It resolves placement from the node's
//     membership agent (one atomic load on the REQ path), and heals driver
//     churn: when a placement change makes this node a NEW driver of a
//     shard (the previous driver crashed, or a joined node ranked into the
//     set), the service pulls the shard's directory metadata — replica sets
//     and ownership timestamps, never object data — from the surviving
//     drivers (DIR-PULL / DIR-STATE), NACKing ownership REQs for that shard
//     until the first snapshot lands (Ready). In-flight arbitrations need no
//     transfer at all: every arbiter stores the full pending record, so the
//     existing arb-replay path completes them per shard.
package directory

import (
	"sync"
	"sync/atomic"
	"time"

	"zeus/internal/membership"
	"zeus/internal/store"
	"zeus/internal/transport"
	"zeus/internal/wire"
)

// Directory resolves object → shard → arbitration drivers for the ownership
// engine.
type Directory interface {
	// Shards returns the shard count of the current placement.
	Shards() int
	// ShardOf maps an object to its directory shard.
	ShardOf(obj wire.ObjectID) int
	// DriversFor returns the driver set of obj's shard (not live-filtered;
	// callers intersect with the view).
	DriversFor(obj wire.ObjectID) wire.Bitmap
	// DrivesShard reports whether n drives obj's shard.
	DrivesShard(n wire.NodeID, obj wire.ObjectID) bool
	// Ready reports whether this node may drive obj's shard right now (a
	// new driver is not ready until it synced the shard's metadata).
	Ready(obj wire.ObjectID) bool
	// Authoritative reports whether one driver's directory answer is final
	// (the fixed static directory) or requires corroboration (a sharded
	// driver may have been force-readied with incomplete entries).
	Authoritative() bool
	// PlacementEpoch returns the current placement version.
	PlacementEpoch() wire.Epoch
}

// ---------------------------------------------------------------------------
// Static: the 1-shard compat shim.
// ---------------------------------------------------------------------------

// Static is the fixed-driver-set directory: one shard driven by the
// configured nodes, always ready. It reproduces the pre-sharding DirNodes
// behaviour exactly.
type Static struct{ drivers wire.Bitmap }

// NewStatic builds the compat shim over a fixed driver set.
func NewStatic(drivers wire.Bitmap) Static { return Static{drivers: drivers} }

func (s Static) Shards() int                          { return 1 }
func (s Static) ShardOf(wire.ObjectID) int            { return 0 }
func (s Static) DriversFor(wire.ObjectID) wire.Bitmap { return s.drivers }
func (s Static) DrivesShard(n wire.NodeID, _ wire.ObjectID) bool {
	return s.drivers.Contains(n)
}
func (s Static) Ready(wire.ObjectID) bool   { return true }
func (s Static) Authoritative() bool        { return true }
func (s Static) PlacementEpoch() wire.Epoch { return 0 }

// ---------------------------------------------------------------------------
// Service: the sharded directory.
// ---------------------------------------------------------------------------

// Options tunes a Service.
type Options struct {
	// Shards and Degree parameterize the LOCAL fallback placement, used
	// only when the membership agent replicates no placement (hand-rolled
	// deployments). When the view service replicates a placement — the
	// normal case — the replicated map is authoritative, including its
	// shard count.
	Shards int
	Degree int
	// SyncTimeout bounds how long a newly assigned shard may wait for a
	// DIR-STATE snapshot before the driver gives up and serves with what it
	// has (liveness backstop: all snapshot sources may be dead, in which
	// case the metadata is reconstructed lazily through arbitrations).
	// Default 250ms.
	SyncTimeout time.Duration
}

// Stats counts Service activity (tests and diagnostics).
type Stats struct {
	Pulls       uint64 // DIR-PULL rounds issued (shards this node newly drives)
	Synced      uint64 // shards healed by a DIR-STATE snapshot
	ForcedReady uint64 // shards or suspects force-readied by the timeout backstop
	Entries     uint64 // directory entries installed from snapshots
	Syncing     int    // shards currently awaiting a snapshot
	Suspect     int    // objects awaiting an in-flight arbitration's outcome
}

// Service is one node's directory resolver plus the shard-sync engine.
type Service struct {
	self  wire.NodeID
	st    *store.Store
	tr    transport.Transport
	agent *membership.Agent
	opts  Options

	// fallback caches the locally computed placement per epoch when the
	// agent replicates none.
	fallback atomic.Pointer[wire.DirPlacement]

	mu      sync.Mutex
	last    wire.DirPlacement  // placement last diffed by viewChanged
	syncing map[int]wire.Epoch // shard → placement epoch of the pending pull
	// suspect holds objects whose snapshot entry carried an in-flight
	// arbitration (DirEntry.Pending): the applied state this node synced
	// may be superseded the moment that arbitration's replay completes, so
	// this node refuses to DRIVE those objects (Ready=false) until it has
	// observed the outcome — the replay reaches it directly, because
	// arb-replays address the object's current drivers — or the backstop
	// timer fires. Keyed to the snapshot's o_ts: the suspicion lifts once
	// the local entry advances past it (or holds the pending itself).
	suspect  map[wire.ObjectID]wire.OTS
	suspectN atomic.Int32
	syncN    atomic.Int32 // fast-path probe: len(syncing) without the lock
	// diffed is the placement epoch viewChanged last processed. Ready is
	// answered pessimistically while the visible placement is newer: the
	// replicated placement becomes visible (one atomic store at the agent)
	// strictly BEFORE the view-change callback chain reaches viewChanged,
	// and in that window a REQ handler would otherwise see
	// DrivesShard=true with an unpopulated syncing set — arbitrating a
	// freshly assigned shard from an empty entry, the exact hole Ready
	// exists to close.
	diffed atomic.Uint32

	stPulls   atomic.Uint64
	stSynced  atomic.Uint64
	stForced  atomic.Uint64
	stEntries atomic.Uint64
}

// NewService builds the sharded directory for one node and hooks it into the
// membership agent's view-change stream. Call Register to install its
// DIR-PULL / DIR-STATE handlers before traffic flows.
func NewService(self wire.NodeID, st *store.Store, tr transport.Transport, agent *membership.Agent, opts Options) *Service {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Degree <= 0 {
		opts.Degree = 3
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 250 * time.Millisecond
	}
	s := &Service{
		self:    self,
		st:      st,
		tr:      tr,
		agent:   agent,
		opts:    opts,
		syncing: make(map[int]wire.Epoch),
		suspect: make(map[wire.ObjectID]wire.OTS),
	}
	s.last = *s.placement()
	s.diffed.Store(uint32(s.last.Epoch))
	agent.OnChange(func(_, _ wire.View, _ wire.Bitmap) { s.viewChanged() })
	return s
}

// Register installs the service's handlers on the router. The sync kinds are
// unkeyed, so they stay on the inline dispatch path (they are rare).
func (s *Service) Register(r *transport.Router) {
	r.HandleMany(s.Handle, wire.KindDirPull, wire.KindDirState)
}

// Stats returns a snapshot of counters.
func (s *Service) Stats() Stats {
	return Stats{
		Pulls:       s.stPulls.Load(),
		Synced:      s.stSynced.Load(),
		ForcedReady: s.stForced.Load(),
		Entries:     s.stEntries.Load(),
		Syncing:     int(s.syncN.Load()),
		Suspect:     int(s.suspectN.Load()),
	}
}

// placement resolves the current placement: the replicated one when the
// agent has it (one atomic load), else a locally computed per-epoch fallback.
func (s *Service) placement() *wire.DirPlacement {
	if p := s.agent.Placement(); p != nil && !p.IsZero() {
		return p
	}
	v := s.agent.View()
	if p := s.fallback.Load(); p != nil && p.Epoch == v.Epoch {
		return p
	}
	np := wire.ComputePlacement(s.opts.Shards, s.opts.Degree, v.Epoch, v.Live)
	s.fallback.Store(&np)
	return &np
}

// Directory interface.

func (s *Service) Shards() int                   { return len(s.placement().Shards) }
func (s *Service) ShardOf(obj wire.ObjectID) int { return s.placement().ShardOf(obj) }
func (s *Service) DriversFor(obj wire.ObjectID) wire.Bitmap {
	return s.placement().DriversFor(obj)
}
func (s *Service) DrivesShard(n wire.NodeID, obj wire.ObjectID) bool {
	return s.placement().Drives(n, obj)
}
func (s *Service) PlacementEpoch() wire.Epoch { return s.placement().Epoch }

// Authoritative is false: a sharded driver may have been force-readied with
// incomplete entries, so requesters corroborate unknown-object answers.
func (s *Service) Authoritative() bool { return false }

// Ready reports whether this node may drive obj's shard: false while a
// freshly assigned shard awaits its metadata snapshot, while a newly
// visible placement has not been diffed yet (see diffed), and for the
// specific objects whose snapshot flagged an in-flight arbitration (see
// suspect) until the outcome is visible locally.
func (s *Service) Ready(obj wire.ObjectID) bool {
	p := s.placement()
	if wire.Epoch(s.diffed.Load()) != p.Epoch {
		return false
	}
	if s.suspectN.Load() > 0 && !s.clearedSuspect(obj) {
		return false
	}
	if s.syncN.Load() == 0 {
		return true
	}
	sh := p.ShardOf(obj)
	s.mu.Lock()
	_, syncing := s.syncing[sh]
	s.mu.Unlock()
	return !syncing
}

// clearedSuspect reports whether obj is clear of suspicion, lifting it when
// the local entry caught up: either the in-flight arbitration reached this
// node (o.Pending set — the ownership engine then handles it natively) or
// its completion did (o_ts advanced past the snapshot's).
func (s *Service) clearedSuspect(obj wire.ObjectID) bool {
	s.mu.Lock()
	ts, bad := s.suspect[obj]
	s.mu.Unlock()
	if !bad {
		return true
	}
	o, ok := s.st.Get(obj)
	if !ok {
		return false
	}
	o.Mu.Lock()
	caughtUp := o.Pending != nil || ts.Less(o.OTS)
	o.Mu.Unlock()
	if !caughtUp {
		return false
	}
	s.mu.Lock()
	if _, still := s.suspect[obj]; still {
		delete(s.suspect, obj)
		s.suspectN.Store(int32(len(s.suspect)))
	}
	s.mu.Unlock()
	return true
}

// viewChanged diffs the new placement against the last one and starts a
// metadata pull for every shard this node NEWLY drives. It runs on the
// agent's view-change callback, before the ownership engine pauses/resumes,
// so pulls overlap the recovery barrier and are usually done by the time
// ownership requests flow again.
func (s *Service) viewChanged() {
	p := *s.placement()
	live := s.agent.View().Live
	// Shards are grouped by their source set so each source scans its store
	// ONCE per view change, however many shards this node newly drives.
	groups := make(map[wire.Bitmap][]uint32)

	s.mu.Lock()
	prev := s.last
	s.last = p
	for sh, ds := range p.Shards {
		if !ds.Contains(s.self) {
			// Not (or no longer) a driver: nothing to sync. Stale entries
			// this node may keep are harmless — it will never arbitrate
			// from them.
			delete(s.syncing, sh)
			continue
		}
		var old wire.Bitmap
		if sh < len(prev.Shards) {
			old = prev.Shards[sh]
		}
		if old.Contains(s.self) {
			continue // already a driver: entries are current
		}
		// Pull from the shard's surviving previous drivers.
		sources := old.Intersect(live).Remove(s.self)
		if sources == 0 {
			// Every previous driver is gone — a simultaneous loss of a
			// whole driver set, outside the tolerated fault envelope (like
			// losing all replicas of a data object). Serve with what we
			// have rather than block: CreateObject registrations and bulk
			// seeding rebuild entries for new objects, but pre-existing
			// objects of this shard stay unknown to the directory until
			// re-seeded (README documents the availability gap).
			delete(s.syncing, sh)
			continue
		}
		s.syncing[sh] = p.Epoch
		groups[sources] = append(groups[sources], uint32(sh))
	}
	s.syncN.Store(int32(len(s.syncing)))
	s.diffed.Store(uint32(p.Epoch))
	s.mu.Unlock()

	for sources, shards := range groups {
		s.stPulls.Add(uint64(len(shards)))
		msg := &wire.DirPull{Shards: shards, PlacementEpoch: p.Epoch, From: s.self}
		_ = transport.Multicast(s.tr, sources.Nodes(), msg)
		for _, sh := range shards {
			sh, ep := int(sh), p.Epoch
			time.AfterFunc(s.opts.SyncTimeout, func() { s.forceReady(sh, ep) })
		}
	}
	if len(groups) > 0 {
		transport.Flush(s.tr)
	}
}

// forceReady is the liveness backstop: a shard whose snapshot never arrived
// (sources crashed, messages lost beyond the transport's patience) starts
// serving anyway; unknown entries heal through arbitration traffic.
func (s *Service) forceReady(shard int, epoch wire.Epoch) {
	s.mu.Lock()
	if ep, ok := s.syncing[shard]; ok && ep == epoch {
		delete(s.syncing, shard)
		s.syncN.Store(int32(len(s.syncing)))
		s.stForced.Add(1)
	}
	s.mu.Unlock()
}

// Handle dispatches one inbound directory-sync message.
func (s *Service) Handle(from wire.NodeID, m wire.Msg) {
	switch v := m.(type) {
	case *wire.DirPull:
		s.handlePull(v)
	case *wire.DirState:
		s.handleState(v)
	}
}

// handlePull snapshots the requested shards' directory metadata in ONE store
// scan and ships one DirState per shard to the pulling driver, echoing the
// pull's placement epoch. Any node answers (the snapshot is only metadata);
// pullers target previous drivers, which hold complete entries.
func (s *Service) handlePull(m *wire.DirPull) {
	if len(m.Shards) == 0 {
		return
	}
	p := s.placement()
	wanted := make(map[int][]wire.DirEntry, len(m.Shards))
	for _, sh := range m.Shards {
		wanted[int(sh)] = nil
	}
	s.st.ForEach(func(o *store.Object) bool {
		sh := p.ShardOf(o.ID)
		entries, ok := wanted[sh]
		if !ok {
			return true
		}
		o.Mu.Lock()
		if o.Replicas.Owner != wire.NoNode || o.Replicas.Readers != 0 || o.Pending != nil {
			wanted[sh] = append(entries, wire.DirEntry{
				Obj: o.ID, TS: o.OTS, Replicas: o.Replicas, Pending: o.Pending != nil,
			})
		}
		o.Mu.Unlock()
		return true
	})
	for sh, entries := range wanted {
		_ = s.tr.Send(m.From, &wire.DirState{
			Shard: uint32(sh), PlacementEpoch: m.PlacementEpoch, From: s.self, Entries: entries,
		})
	}
	transport.Flush(s.tr)
}

// handleState installs a shard snapshot: each entry only overwrites a
// strictly older ownership timestamp and never a pending arbitration, so
// duplicate snapshots and races with live arbitration traffic are harmless.
func (s *Service) handleState(m *wire.DirState) {
	live := s.agent.View().Live
	var flagged []wire.ObjectID
	for _, e := range m.Entries {
		o, _ := s.st.GetOrCreate(e.Obj)
		o.Mu.Lock()
		if o.Pending == nil && o.OTS.Less(e.TS) {
			o.OTS = e.TS
			o.Replicas = e.Replicas.Prune(live)
			s.stEntries.Add(1)
		}
		o.Mu.Unlock()
		if e.Pending {
			s.mu.Lock()
			if cur, ok := s.suspect[e.Obj]; !ok || cur.Less(e.TS) {
				s.suspect[e.Obj] = e.TS
				s.suspectN.Store(int32(len(s.suspect)))
				flagged = append(flagged, e.Obj)
			}
			s.mu.Unlock()
		}
	}
	if len(flagged) > 0 {
		// Backstop: suspicion must not outlive the arbitration it guards.
		// Replays force-complete within StaleAfter-scale time; after four
		// sync windows, drive with what we have and count the override.
		// The timer only lifts the suspicion it armed: an object re-flagged
		// at a higher o_ts by a later snapshot (a NEW in-flight
		// arbitration) keeps its own full window.
		objs := flagged
		armed := make([]wire.OTS, len(objs))
		s.mu.Lock()
		for i, obj := range objs {
			armed[i] = s.suspect[obj]
		}
		s.mu.Unlock()
		time.AfterFunc(4*s.opts.SyncTimeout, func() {
			s.mu.Lock()
			for i, obj := range objs {
				if cur, ok := s.suspect[obj]; ok && !armed[i].Less(cur) {
					delete(s.suspect, obj)
					s.stForced.Add(1)
				}
			}
			s.suspectN.Store(int32(len(s.suspect)))
			s.mu.Unlock()
		})
	}
	// Mark the shard ready only when the snapshot answers THIS placement's
	// pull: a delayed DirState from a superseded placement may miss entries
	// minted since and must not short-circuit the newer sync (its entries,
	// installed above, are still useful — the install guard keeps them
	// safe). Same epoch-match rule as forceReady.
	s.mu.Lock()
	if ep, ok := s.syncing[int(m.Shard)]; ok && ep == m.PlacementEpoch {
		delete(s.syncing, int(m.Shard))
		s.syncN.Store(int32(len(s.syncing)))
		s.stSynced.Add(1)
	}
	s.mu.Unlock()
}
